//! Operator placement: turning a logical plan into a set of per-peer tasks.
//!
//! "An important issue for scaling with many subscriptions and peers is the
//! placement of operators such as filters close to the data they work on
//! when possible, to save on data transfers."  The default strategy
//! ([`PlacementStrategy::PushToSources`]) therefore keeps selections on the
//! monitored peers, places a union on one of its input peers, a join on the
//! peer of one of its inputs (preferring a peer that already hosts an
//! alerter of the join, as in the Section 3.4 example where the join runs at
//! `meteo.com`), and the final restructure/publisher on the subscription
//! manager.  [`PlacementStrategy::Centralized`] ships every alert to the
//! manager and computes there — the baseline of experiment E6.

use p2pmon_p2pml::plan::{normalize_peer, LogicalNode, LogicalPlan};
use p2pmon_p2pml::{ByClause, ValueExpr};
use p2pmon_streams::{AggregateSpec, AttrCondition, ChannelId, Condition, Template};
use p2pmon_xmlkit::PathPattern;

/// How operators are assigned to peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementStrategy {
    /// Push selections and unions to the monitored peers; joins next to one
    /// of their inputs; restructure and publisher at the manager (the
    /// paper's optimized plan).
    #[default]
    PushToSources,
    /// Every operator runs at the subscription-manager peer; raw alerts cross
    /// the network unfiltered (the baseline of E6).
    Centralized,
}

/// What a deployed task does.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskKind {
    /// Binds an alerter's output stream: every alert produced by
    /// `function` at `monitored_peer` enters the task, bound to `var`.
    Source {
        /// Alerter function ("inCOM", "outCOM", "rssFeed", …).
        function: String,
        /// The monitored peer.
        monitored_peer: String,
        /// The variable the alerts bind to.
        var: String,
    },
    /// A membership-driven source: alerts of `function` from any monitored
    /// peer currently in the membership set (fed by the driver input on
    /// port 1) are bound to `var`.
    DynamicSource {
        /// Alerter function.
        function: String,
        /// The variable the alerts bind to.
        var: String,
    },
    /// Subscribes to an already-published channel (stream reuse or an
    /// explicit channel source).
    ChannelSource {
        /// The channel to subscribe to.
        channel: ChannelId,
        /// The variable received items bind to.
        var: String,
    },
    /// The single-subscription Filter (σ).
    Select {
        /// The variable the conditions apply to.
        var: String,
        /// Simple conditions on root attributes.
        simple: Vec<AttrCondition>,
        /// Tree-pattern conditions.
        patterns: Vec<PathPattern>,
        /// Derived values computed before evaluating the general conditions.
        derived: Vec<(String, ValueExpr)>,
        /// General conditions.
        conditions: Vec<Condition>,
    },
    /// Union (∪) over `arity` inputs.
    Union {
        /// Number of input ports.
        arity: usize,
    },
    /// Join (⋈) on attribute equality.
    Join {
        /// (variable, attribute) of the left key.
        left_key: (String, String),
        /// (variable, attribute) of the right key.
        right_key: (String, String),
        /// Residual conditions on the joined tuple.
        residual: Vec<Condition>,
    },
    /// Duplicate removal.
    Dedup,
    /// Restructure (Π): the RETURN template.
    Restructure {
        /// The template.
        template: Template,
        /// Derived values the template may reference.
        derived: Vec<(String, ValueExpr)>,
    },
    /// Sketch leaf: absorbs raw items next to a source and forwards a
    /// serialized *delta* partial on each dispatch-round boundary.
    SketchLeaf {
        /// Which sketch to maintain and how to key it.
        spec: AggregateSpec,
    },
    /// Interior sketch merge: folds the partials of up to
    /// [`SKETCH_MERGE_FANIN`] children and forwards the combined delta.
    SketchMerge {
        /// Which sketch to maintain.
        spec: AggregateSpec,
    },
    /// Sketch root: accumulates partials cumulatively and materializes the
    /// XML answer items that enter the normal channel/multicast path.
    SketchRoot {
        /// Which sketch to maintain and how often to emit answers.
        spec: AggregateSpec,
    },
}

impl TaskKind {
    /// The operator name used in stream definitions and plan displays.
    pub fn operator_name(&self) -> &'static str {
        match self {
            TaskKind::Source { .. } => "Alerter",
            TaskKind::DynamicSource { .. } => "DynamicAlerter",
            TaskKind::ChannelSource { .. } => "Channel",
            TaskKind::Select { .. } => "Filter",
            TaskKind::Union { .. } => "Union",
            TaskKind::Join { .. } => "Join",
            TaskKind::Dedup => "DuplicateRemoval",
            TaskKind::Restructure { .. } => "Restructure",
            TaskKind::SketchLeaf { .. } => "SketchLeaf",
            TaskKind::SketchMerge { .. } => "SketchMerge",
            TaskKind::SketchRoot { .. } => "SketchRoot",
        }
    }
}

/// Maximum fan-in of an interior sketch-merge node.  Keeping it constant
/// bounds every merge's work per round and yields a tree of depth
/// `log_16(leaves)` — 3 levels at 10k monitored peers.
pub const SKETCH_MERGE_FANIN: usize = 16;

/// One placed task.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedTask {
    /// Task identifier, unique within the plan.
    pub id: usize,
    /// The peer executing the task.
    pub peer: String,
    /// What the task does.
    pub kind: TaskKind,
    /// Where its output goes: `(task id, input port)` of the consumer, or
    /// `None` for the plan root (the publisher consumes it).
    pub downstream: Option<(usize, usize)>,
}

/// A fully placed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacedPlan {
    /// All tasks, indexed by their id.
    pub tasks: Vec<PlacedTask>,
    /// The root task (whose output feeds the publisher).
    pub root: usize,
    /// The manager peer (hosting the publisher).
    pub manager: String,
    /// The BY clause of the subscription.
    pub by: ByClause,
}

impl PlacedPlan {
    /// Number of tasks placed on the given peer.
    pub fn tasks_on(&self, peer: &str) -> usize {
        self.tasks.iter().filter(|t| t.peer == peer).count()
    }

    /// All peers hosting at least one task.
    pub fn peers(&self) -> Vec<String> {
        let mut peers: Vec<String> = self.tasks.iter().map(|t| t.peer.clone()).collect();
        peers.push(self.manager.clone());
        peers.sort();
        peers.dedup();
        peers
    }

    /// Mints the *canonical channel identity* of every task's output stream:
    /// `(producing peer, stream name)`, where the stream name is the BY
    /// clause's channel name for a root published as a channel and the
    /// subscription-scoped `s<sub>-t<task>` name otherwise.  This single
    /// identity is used by the routing tables, the live multicast *and* the
    /// published stream definitions, so a definition always names the peer
    /// that actually emits (see `p2pmon_dht::streamdef`'s identity
    /// invariant).  Every task gets an identity — pass-through tasks
    /// (sources, channel subscriptions) use theirs only for private
    /// plan-internal edges, while derived operators also publish theirs in
    /// the Stream Definition Database.
    pub fn output_channels(&self, sub_idx: usize) -> Vec<ChannelId> {
        self.tasks
            .iter()
            .map(|task| {
                let stream = match (&task.downstream, &self.by) {
                    (None, ByClause::Channel(name)) => name.clone(),
                    _ => format!("s{sub_idx}-t{}", task.id),
                };
                ChannelId::new(task.peer.clone(), stream)
            })
            .collect()
    }

    /// Number of plan edges that cross from one peer to another — each such
    /// edge becomes a channel at deployment time.
    pub fn cross_peer_edges(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| match t.downstream {
                Some((consumer, _)) => self.tasks[consumer].peer != t.peer,
                None => t.peer != self.manager,
            })
            .count()
    }
}

/// The algebraic optimization step of the Subscription Manager: selections
/// are pushed *below* unions so that each monitored peer filters its own
/// alerts before anything crosses the network — exactly the shape of the
/// Section 3.3 plan `∪(σF(out@a.com), σF(out@b.com))`.  Pushing below the
/// union also makes each per-source filter an independently publishable
/// (and therefore reusable) stream.
pub fn push_selections_below_unions(node: LogicalNode) -> LogicalNode {
    match node {
        LogicalNode::Select {
            var,
            input,
            simple,
            patterns,
            derived,
            conditions,
        } => {
            let input = push_selections_below_unions(*input);
            if let LogicalNode::Union {
                var: union_var,
                inputs,
            } = input
            {
                LogicalNode::Union {
                    var: union_var,
                    inputs: inputs
                        .into_iter()
                        .map(|child| LogicalNode::Select {
                            var: var.clone(),
                            input: Box::new(push_selections_below_unions(child)),
                            simple: simple.clone(),
                            patterns: patterns.clone(),
                            derived: derived.clone(),
                            conditions: conditions.clone(),
                        })
                        .collect(),
                }
            } else {
                LogicalNode::Select {
                    var,
                    input: Box::new(input),
                    simple,
                    patterns,
                    derived,
                    conditions,
                }
            }
        }
        LogicalNode::Union { var, inputs } => LogicalNode::Union {
            var,
            inputs: inputs
                .into_iter()
                .map(push_selections_below_unions)
                .collect(),
        },
        LogicalNode::Join {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => LogicalNode::Join {
            left: Box::new(push_selections_below_unions(*left)),
            right: Box::new(push_selections_below_unions(*right)),
            left_key,
            right_key,
            residual,
        },
        LogicalNode::Dedup { input } => LogicalNode::Dedup {
            input: Box::new(push_selections_below_unions(*input)),
        },
        LogicalNode::Restructure {
            input,
            template,
            derived,
        } => LogicalNode::Restructure {
            input: Box::new(push_selections_below_unions(*input)),
            template,
            derived,
        },
        LogicalNode::DynamicAlerter {
            function,
            var,
            driver,
        } => LogicalNode::DynamicAlerter {
            function,
            var,
            driver: Box::new(push_selections_below_unions(*driver)),
        },
        LogicalNode::Aggregate { var, input, spec } => LogicalNode::Aggregate {
            var,
            input: Box::new(push_selections_below_unions(*input)),
            spec,
        },
        leaf @ (LogicalNode::Alerter { .. } | LogicalNode::ChannelIn { .. }) => leaf,
    }
}

/// Measured inputs for rate-aware placement: per-stream data rates and
/// inter-peer latencies (the paper's "statistical information" consulted by
/// the optimizer).  Both are best-effort — `rate_of` returns `None` for
/// streams that have not produced traffic yet, and placement falls back to
/// the count-based heuristic when *no* input of an operator has a measured
/// rate.
pub struct PlacementRates<'a> {
    /// Recent data rate (bytes/sec) of the stream a leaf task binds:
    /// `TaskKind::Source` looks up the alerter feed, `TaskKind::ChannelSource`
    /// the subscribed channel.  `None` when never observed.
    pub rate_of: &'a dyn Fn(&TaskKind) -> Option<f64>,
    /// Expected latency (ms) between two peers, from the `LatencyModel`.
    pub latency: &'a dyn Fn(&str, &str) -> u64,
}

/// Places a logical plan.  `manager` is the subscription-manager peer.
pub fn place(plan: &LogicalPlan, manager: &str, strategy: PlacementStrategy) -> PlacedPlan {
    place_with(plan, manager, strategy, None)
}

/// Places a logical plan, optionally minimizing *expected bytes moved ×
/// latency-weighted hops* for multi-input operators (joins/unions) using
/// measured channel rates.  Each new subscription is placed with the rates
/// known *at deployment time*, so later arrivals benefit from traffic
/// observed on streams deployed earlier.
pub fn place_with(
    plan: &LogicalPlan,
    manager: &str,
    strategy: PlacementStrategy,
    rates: Option<&PlacementRates>,
) -> PlacedPlan {
    let mut builder = Builder {
        tasks: Vec::new(),
        manager: manager.to_string(),
        strategy,
        rates,
    };
    let root = builder.place_node(&plan.root);
    let mut placed = PlacedPlan {
        tasks: builder.tasks,
        root,
        manager: manager.to_string(),
        by: plan.by.clone(),
    };
    // Co-place channel sources with their consumer: a subscribing task is
    // movable (it computes nothing), and hosting it on its consumer's peer
    // makes the channel→consumer edge local — the reused stream travels
    // producer→consumer directly instead of bouncing through the manager,
    // one network hop fewer per item.  A channel source that *is* the plan
    // root has no consumer; it moves to the manager, where the publisher
    // wants the results anyway — and where all of a shared stream's
    // same-manager subscribers ride one multicast message.
    let moves: Vec<(usize, String)> = placed
        .tasks
        .iter()
        .filter_map(|task| match (&task.kind, task.downstream) {
            (TaskKind::ChannelSource { .. }, Some((consumer, _))) => {
                Some((task.id, placed.tasks[consumer].peer.clone()))
            }
            (TaskKind::ChannelSource { .. }, None) => Some((task.id, manager.to_string())),
            _ => None,
        })
        .collect();
    for (id, peer) in moves {
        placed.tasks[id].peer = peer;
    }
    placed
}

struct Builder<'a> {
    tasks: Vec<PlacedTask>,
    manager: String,
    strategy: PlacementStrategy,
    rates: Option<&'a PlacementRates<'a>>,
}

impl Builder<'_> {
    fn push(&mut self, peer: String, kind: TaskKind) -> usize {
        let id = self.tasks.len();
        self.tasks.push(PlacedTask {
            id,
            peer,
            kind,
            downstream: None,
        });
        id
    }

    fn connect(&mut self, producer: usize, consumer: usize, port: usize) {
        self.tasks[producer].downstream = Some((consumer, port));
    }

    /// The peer an inner operator should run on, given its input tasks and
    /// the candidate (anchor) peers.
    fn inner_peer(&self, input_tasks: &[usize], candidates: &[String]) -> String {
        match self.strategy {
            PlacementStrategy::Centralized => self.manager.clone(),
            PlacementStrategy::PushToSources => {
                if let Some(peer) = self
                    .rates
                    .and_then(|r| self.rate_weighted_peer(input_tasks, candidates, r))
                {
                    return peer;
                }
                // Load balancing heuristic: among the input peers, pick the one
                // currently hosting the fewest tasks.
                candidates
                    .iter()
                    .min_by_key(|p| self.tasks.iter().filter(|t| &&t.peer == p).count())
                    .cloned()
                    .unwrap_or_else(|| self.manager.clone())
            }
        }
    }

    /// Rate-aware choice: the candidate minimizing the expected traffic cost
    /// `Σ_inputs rate(input) × latency(input peer, candidate)` — bytes moved
    /// weighted by how far they move.  Inputs without a measured rate weigh
    /// in at the mean of the measured ones; when *nothing* is measured the
    /// caller falls back to the count heuristic, so cold starts place exactly
    /// like before.  Ties keep the first (input-order) candidate, which makes
    /// the choice deterministic.
    fn rate_weighted_peer(
        &self,
        input_tasks: &[usize],
        candidates: &[String],
        rates: &PlacementRates,
    ) -> Option<String> {
        let measured: Vec<Option<f64>> = input_tasks
            .iter()
            .map(|&t| self.subtree_rate(t, rates))
            .collect();
        let known: Vec<f64> = measured.iter().filter_map(|m| *m).collect();
        if known.is_empty() {
            return None;
        }
        let fallback = known.iter().sum::<f64>() / known.len() as f64;
        let mut best: Option<(f64, &String)> = None;
        let mut seen: Vec<&String> = Vec::new();
        for candidate in candidates {
            if seen.contains(&candidate) {
                continue;
            }
            seen.push(candidate);
            let cost: f64 = input_tasks
                .iter()
                .zip(&measured)
                .map(|(&t, m)| {
                    let peer = &self.tasks[t].peer;
                    if peer == candidate {
                        0.0
                    } else {
                        m.unwrap_or(fallback) * (rates.latency)(peer, candidate) as f64
                    }
                })
                .sum();
            match best {
                Some((c, _)) if cost >= c => {}
                _ => best = Some((cost, candidate)),
            }
        }
        best.map(|(_, peer)| peer.clone())
    }

    /// Estimated data rate (bytes/sec) of a task's output: the sum of the
    /// measured rates of the source/channel leaves feeding it.  An upper
    /// bound — intermediate selections only shrink the stream, and since the
    /// same operators sit on every input branch of a union, relative
    /// comparisons between branches survive the approximation.  `None` when
    /// no leaf underneath has ever been observed.
    fn subtree_rate(&self, root: usize, rates: &PlacementRates) -> Option<f64> {
        let mut total: Option<f64> = None;
        let mut stack = vec![root];
        while let Some(t) = stack.pop() {
            let kind = &self.tasks[t].kind;
            if matches!(
                kind,
                TaskKind::Source { .. }
                    | TaskKind::DynamicSource { .. }
                    | TaskKind::ChannelSource { .. }
            ) {
                if let Some(rate) = (rates.rate_of)(kind) {
                    total = Some(total.unwrap_or(0.0) + rate);
                }
            }
            for task in &self.tasks {
                if task.downstream.map(|(consumer, _)| consumer) == Some(t) {
                    stack.push(task.id);
                }
            }
        }
        total
    }

    /// The input peers that anchor an inner operator's placement.  Channel
    /// sources are movable — they are co-placed with their consumer after
    /// placement — so they only anchor when *every* input is one.
    fn anchor_peers(&self, input_tasks: &[usize]) -> Vec<String> {
        let anchored: Vec<String> = input_tasks
            .iter()
            .filter(|&&t| !matches!(self.tasks[t].kind, TaskKind::ChannelSource { .. }))
            .map(|&t| self.tasks[t].peer.clone())
            .collect();
        if anchored.is_empty() {
            input_tasks
                .iter()
                .map(|&t| self.tasks[t].peer.clone())
                .collect()
        } else {
            anchored
        }
    }

    /// Source-side peer: where an alerter-bound task runs.  Alerters always
    /// run on the monitored peer's premises; under the centralized strategy
    /// the *consumer* of their raw alerts is the manager, which is what makes
    /// the raw stream cross the network.
    fn place_node(&mut self, node: &LogicalNode) -> usize {
        match node {
            LogicalNode::Alerter {
                function,
                peer,
                var,
            } => self.push(
                peer.clone(),
                TaskKind::Source {
                    function: function.clone(),
                    monitored_peer: peer.clone(),
                    var: var.clone(),
                },
            ),
            LogicalNode::DynamicAlerter {
                function,
                var,
                driver,
            } => {
                let driver_task = self.place_node(driver);
                let driver_peer = self.tasks[driver_task].peer.clone();
                let peer = match self.strategy {
                    PlacementStrategy::Centralized => self.manager.clone(),
                    PlacementStrategy::PushToSources => driver_peer,
                };
                let dynamic = self.push(
                    peer,
                    TaskKind::DynamicSource {
                        function: function.clone(),
                        var: var.clone(),
                    },
                );
                // Membership events arrive on port 1.
                self.connect(driver_task, dynamic, 1);
                dynamic
            }
            LogicalNode::ChannelIn { peer, stream, var } => {
                // The subscribing task runs wherever its consumer runs (it is
                // co-placed after the fact); until the consumer is known,
                // host it on the *providing* peer — the stream is already
                // there, so operators stacked on top of the subscription
                // (e.g. a filter over a reused source) run next to the data
                // and only their derived output crosses the network.
                self.push(
                    normalize_peer(peer),
                    TaskKind::ChannelSource {
                        channel: ChannelId::new(peer.clone(), stream.clone()),
                        var: var.clone(),
                    },
                )
            }
            LogicalNode::Union { var: _, inputs } => {
                let input_tasks: Vec<usize> = inputs.iter().map(|i| self.place_node(i)).collect();
                let input_peers = self.anchor_peers(&input_tasks);
                let peer = self.inner_peer(&input_tasks, &input_peers);
                let union = self.push(
                    peer,
                    TaskKind::Union {
                        arity: input_tasks.len(),
                    },
                );
                for (port, task) in input_tasks.into_iter().enumerate() {
                    self.connect(task, union, port);
                }
                union
            }
            LogicalNode::Select {
                var,
                input,
                simple,
                patterns,
                derived,
                conditions,
            } => {
                let input_task = self.place_node(input);
                let peer = match self.strategy {
                    PlacementStrategy::Centralized => self.manager.clone(),
                    // Pushed next to its input.
                    PlacementStrategy::PushToSources => self.tasks[input_task].peer.clone(),
                };
                let select = self.push(
                    peer,
                    TaskKind::Select {
                        var: var.clone(),
                        simple: simple.clone(),
                        patterns: patterns.clone(),
                        derived: derived.clone(),
                        conditions: conditions.clone(),
                    },
                );
                self.connect(input_task, select, 0);
                select
            }
            LogicalNode::Join {
                left,
                right,
                left_key,
                right_key,
                residual,
            } => {
                let left_task = self.place_node(left);
                let right_task = self.place_node(right);
                let input_tasks = [left_task, right_task];
                let peers = self.anchor_peers(&input_tasks);
                let peer = self.inner_peer(&input_tasks, &peers);
                let join = self.push(
                    peer,
                    TaskKind::Join {
                        left_key: left_key.clone(),
                        right_key: right_key.clone(),
                        residual: residual.clone(),
                    },
                );
                self.connect(left_task, join, 0);
                self.connect(right_task, join, 1);
                join
            }
            LogicalNode::Dedup { input } => {
                let input_task = self.place_node(input);
                let peer = match self.strategy {
                    PlacementStrategy::Centralized => self.manager.clone(),
                    PlacementStrategy::PushToSources => self.tasks[input_task].peer.clone(),
                };
                let dedup = self.push(peer, TaskKind::Dedup);
                self.connect(input_task, dedup, 0);
                dedup
            }
            LogicalNode::Restructure {
                input,
                template,
                derived,
            } => {
                let input_task = self.place_node(input);
                let peer = match self.strategy {
                    PlacementStrategy::Centralized => self.manager.clone(),
                    // The paper's example restructures at the join peer, i.e.
                    // where the input lives, and ships only the (small)
                    // incidents to the manager.
                    PlacementStrategy::PushToSources => self.tasks[input_task].peer.clone(),
                };
                let restructure = self.push(
                    peer,
                    TaskKind::Restructure {
                        template: template.clone(),
                        derived: derived.clone(),
                    },
                );
                self.connect(input_task, restructure, 0);
                restructure
            }
            LogicalNode::Aggregate {
                var: _,
                input,
                spec,
            } => {
                // The single logical aggregate expands into a merge tree: one
                // sketch leaf per input branch (on the branch's peer, so raw
                // items never cross the network), interior merges over chunks
                // of SKETCH_MERGE_FANIN, and the root at the manager.  A
                // union input contributes one leaf per union branch — the
                // union node itself would only concentrate all raw items on a
                // single peer, defeating the point.
                let branches: Vec<&LogicalNode> = match input.as_ref() {
                    LogicalNode::Union { inputs, .. } => inputs.iter().collect(),
                    other => vec![other],
                };
                let mut level: Vec<usize> = Vec::with_capacity(branches.len());
                for branch in branches {
                    let upstream = self.place_node(branch);
                    let peer = match self.strategy {
                        PlacementStrategy::Centralized => self.manager.clone(),
                        PlacementStrategy::PushToSources => self.tasks[upstream].peer.clone(),
                    };
                    let leaf = self.push(peer, TaskKind::SketchLeaf { spec: spec.clone() });
                    self.connect(upstream, leaf, 0);
                    level.push(leaf);
                }
                while level.len() > SKETCH_MERGE_FANIN {
                    let mut next = Vec::with_capacity(level.len() / SKETCH_MERGE_FANIN + 1);
                    for chunk in level.chunks(SKETCH_MERGE_FANIN) {
                        // The first chunk member's peer: deterministic and
                        // O(1).  Partials are bounded-size, so unlike joins
                        // and unions there is no rate asymmetry for the
                        // rate-aware chooser to exploit, and scoring
                        // candidates would cost O(tasks²) at 10k leaves.
                        let peer = match self.strategy {
                            PlacementStrategy::Centralized => self.manager.clone(),
                            PlacementStrategy::PushToSources => self.tasks[chunk[0]].peer.clone(),
                        };
                        let merge = self.push(peer, TaskKind::SketchMerge { spec: spec.clone() });
                        for (port, &task) in chunk.iter().enumerate() {
                            self.connect(task, merge, port);
                        }
                        next.push(merge);
                    }
                    level = next;
                }
                let manager = self.manager.clone();
                let root = self.push(manager, TaskKind::SketchRoot { spec: spec.clone() });
                for (port, task) in level.into_iter().enumerate() {
                    self.connect(task, root, port);
                }
                root
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_p2pml::{compile_subscription, METEO_SUBSCRIPTION};

    fn meteo_placed(strategy: PlacementStrategy) -> PlacedPlan {
        let plan = compile_subscription(METEO_SUBSCRIPTION).unwrap();
        place(&plan, "p", strategy)
    }

    #[test]
    fn pushdown_keeps_sources_and_filters_on_monitored_peers() {
        let placed = meteo_placed(PlacementStrategy::PushToSources);
        // Alerter tasks on a.com, b.com, meteo.com.
        for peer in ["a.com", "b.com", "meteo.com"] {
            assert!(
                placed
                    .tasks
                    .iter()
                    .any(|t| t.peer == peer && matches!(t.kind, TaskKind::Source { .. })),
                "missing alerter task on {peer}"
            );
        }
        // The select over $c1 runs on one of the client peers, not the manager.
        let select = placed
            .tasks
            .iter()
            .find(|t| matches!(&t.kind, TaskKind::Select { var, .. } if var == "c1"))
            .expect("c1 select exists");
        assert_ne!(select.peer, "p");
        // The join runs on one of the involved peers.
        let join = placed
            .tasks
            .iter()
            .find(|t| matches!(t.kind, TaskKind::Join { .. }))
            .unwrap();
        assert_ne!(join.peer, "p");
        assert!(placed.peers().contains(&"p".to_string()));
    }

    #[test]
    fn centralized_puts_every_processor_on_the_manager() {
        let placed = meteo_placed(PlacementStrategy::Centralized);
        for task in &placed.tasks {
            match &task.kind {
                TaskKind::Source { monitored_peer, .. } => assert_eq!(&task.peer, monitored_peer),
                _ => assert_eq!(task.peer, "p", "{:?} should be at the manager", task.kind),
            }
        }
        // Every alerter edge crosses the network.
        assert!(placed.cross_peer_edges() >= 3);
    }

    #[test]
    fn pushdown_has_fewer_cross_peer_edges_than_centralized() {
        let pushed = meteo_placed(PlacementStrategy::PushToSources);
        let central = meteo_placed(PlacementStrategy::Centralized);
        assert!(
            pushed.cross_peer_edges() <= central.cross_peer_edges(),
            "pushdown {} vs centralized {}",
            pushed.cross_peer_edges(),
            central.cross_peer_edges()
        );
    }

    #[test]
    fn downstream_wiring_is_consistent() {
        let placed = meteo_placed(PlacementStrategy::PushToSources);
        let root = placed.root;
        assert!(placed.tasks[root].downstream.is_none());
        // Exactly one task feeds each consumer port.
        for task in &placed.tasks {
            if let Some((consumer, port)) = task.downstream {
                assert!(consumer < placed.tasks.len());
                let dupes = placed
                    .tasks
                    .iter()
                    .filter(|t| t.downstream == Some((consumer, port)))
                    .count();
                assert_eq!(dupes, 1, "port {port} of task {consumer} fed twice");
            }
        }
    }

    #[test]
    fn task_counts_per_peer() {
        let placed = meteo_placed(PlacementStrategy::PushToSources);
        let total: usize = placed.peers().iter().map(|p| placed.tasks_on(p)).sum();
        assert_eq!(total, placed.tasks.len());
    }

    const TWO_PEER_UNION: &str = r#"
for $c in outCOM(<p>http://a.com</p> <p>http://b.com</p>)
where $c.callMethod = "Ping"
return <pong><caller>{$c.caller}</caller></pong>
by email "ops@example.org"
"#;

    #[test]
    fn rate_aware_union_lands_on_the_hotter_input_peer() {
        let plan = compile_subscription(TWO_PEER_UNION).unwrap();
        let latency = |a: &str, b: &str| if a == b { 0 } else { 100 };
        // b.com produces 500× the traffic of a.com: moving a.com's trickle to
        // b.com is cheaper than moving b.com's firehose to a.com.
        let rate_of = |kind: &TaskKind| match kind {
            TaskKind::Source { monitored_peer, .. } if monitored_peer == "b.com" => Some(5000.0),
            TaskKind::Source { .. } => Some(10.0),
            _ => None,
        };
        let rates = PlacementRates {
            rate_of: &rate_of,
            latency: &latency,
        };
        let placed = place_with(&plan, "p", PlacementStrategy::PushToSources, Some(&rates));
        let union = placed
            .tasks
            .iter()
            .find(|t| matches!(t.kind, TaskKind::Union { .. }))
            .unwrap();
        assert_eq!(union.peer, "b.com");

        // Flip the rates and the union follows the data.
        let rate_of = |kind: &TaskKind| match kind {
            TaskKind::Source { monitored_peer, .. } if monitored_peer == "a.com" => Some(5000.0),
            TaskKind::Source { .. } => Some(10.0),
            _ => None,
        };
        let rates = PlacementRates {
            rate_of: &rate_of,
            latency: &latency,
        };
        let placed = place_with(&plan, "p", PlacementStrategy::PushToSources, Some(&rates));
        let union = placed
            .tasks
            .iter()
            .find(|t| matches!(t.kind, TaskKind::Union { .. }))
            .unwrap();
        assert_eq!(union.peer, "a.com");
    }

    #[test]
    fn rate_aware_placement_without_measurements_matches_count_based() {
        let plan = compile_subscription(METEO_SUBSCRIPTION).unwrap();
        let latency = |_: &str, _: &str| 10;
        let rate_of = |_: &TaskKind| None;
        let rates = PlacementRates {
            rate_of: &rate_of,
            latency: &latency,
        };
        let with = place_with(&plan, "p", PlacementStrategy::PushToSources, Some(&rates));
        let without = place(&plan, "p", PlacementStrategy::PushToSources);
        assert_eq!(with, without, "cold start must place exactly like before");
    }

    #[test]
    fn rate_aware_join_weighs_latency_not_just_rate() {
        let plan = compile_subscription(METEO_SUBSCRIPTION).unwrap();
        // Both join inputs carry the same rate, but links are asymmetric
        // (per-link latencies are directional): shipping meteo.com's stream
        // out costs 200 ms while shipping data *to* meteo.com costs 50 ms.
        // Latency weighting alone must pin the join to meteo.com's side.
        let latency = |from: &str, to: &str| {
            if from == to {
                0
            } else if from == "meteo.com" {
                200
            } else if to == "meteo.com" {
                50
            } else {
                10
            }
        };
        let rate_of = |kind: &TaskKind| match kind {
            TaskKind::Source { .. } => Some(1000.0),
            _ => None,
        };
        let rates = PlacementRates {
            rate_of: &rate_of,
            latency: &latency,
        };
        let placed = place_with(&plan, "p", PlacementStrategy::PushToSources, Some(&rates));
        let join = placed
            .tasks
            .iter()
            .find(|t| matches!(t.kind, TaskKind::Join { .. }))
            .unwrap();
        assert_eq!(join.peer, "meteo.com");
    }

    #[test]
    fn output_channels_name_the_emitting_peer() {
        let placed = meteo_placed(PlacementStrategy::PushToSources);
        let channels = placed.output_channels(3);
        assert_eq!(channels.len(), placed.tasks.len());
        for (task, channel) in placed.tasks.iter().zip(&channels) {
            assert_eq!(
                channel.peer, task.peer,
                "a task's canonical channel is emitted by its own peer"
            );
            if task.downstream.is_some() {
                assert_eq!(channel.stream, format!("s3-t{}", task.id));
            } else {
                // METEO publishes `by channel "alertQoS"`: the root's channel
                // carries the BY name, at the *root task's* peer — not the
                // manager's.
                assert_eq!(channel.stream, "alertQoS");
                assert_ne!(task.peer, placed.manager);
            }
        }
    }
}

//! Stream-reuse integration: rewriting a logical plan against the Stream
//! Definition Database before deployment.
//!
//! The Subscription Manager, "when a new monitoring subscription arrives,
//! […] searches for existing streams that could help support (portions of)
//! the new task".  This module converts a compiled [`LogicalNode`] tree into
//! the [`PlanNode`] shape the Reuse algorithm of `p2pmon-dht` understands,
//! runs the cover, and rewrites the plan so that every covered subtree is
//! replaced by a subscription to the covering channel (original or replica).

use p2pmon_dht::{CoverOutcome, PlanNode, ReuseEngine, StreamDefinitionDatabase};
use p2pmon_p2pml::plan::LogicalNode;
use p2pmon_p2pml::ValueExpr;
use p2pmon_streams::{AttrCondition, Condition};

/// The result of applying reuse to a plan.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReuseReport {
    /// Number of plan nodes served by existing streams.
    pub reused_nodes: usize,
    /// Number of plan nodes that will produce new streams.
    pub new_nodes: usize,
    /// The channels the rewritten plan subscribes to — the selected
    /// *providers* (original or replica), one per covered subtree.
    pub subscribed_channels: Vec<(String, String)>,
    /// The canonical `(peer, stream)` identities of the *original* stream
    /// definitions backing each subscription — what the definition database
    /// keys on (and what teardown refcounts), independent of which replica
    /// was picked as the provider.
    pub reused_defs: Vec<(String, String)>,
    /// Operator instances *not* deployed because an existing stream covers
    /// them: plan nodes of covered subtrees minus the channel subscriptions
    /// that replace them.
    pub operators_saved: usize,
}

/// Replica re-publication effectiveness — how much of a hot channel's
/// fan-out the consumer peers carry instead of the origin (Section 5's
/// `<InChannel>` declarations).  Filled on the monitor-wide aggregate
/// ([`ReuseStats::replicas`] via `Monitor::reuse_stats`), zero on
/// per-subscription slices.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Replica declarations published (one per consuming peer per replicated
    /// channel; duplicate subscribers on one peer share a declaration).
    pub replicas_created: u64,
    /// Replica declarations retracted again (last local subscriber gone).
    pub replicas_retracted: u64,
    /// Remote consumers (subscribing tasks whose peer differs from the
    /// stream's origin peer) that attached to a replica provider.
    pub consumers_via_replica: u64,
    /// Remote consumers that attached to the origin directly (no closer
    /// replica existed when they deployed).
    pub consumers_via_origin: u64,
    /// Messages replica peers sent on the origin's behalf
    /// (`NetworkStats::replica_forwarded_messages`) — origin-peer load moved
    /// onto consumers.
    pub origin_messages_saved: u64,
}

impl ReplicaStats {
    /// Fraction of remote consumers served by a replica rather than the
    /// origin.
    pub fn replica_share(&self) -> f64 {
        let remote = self.consumers_via_replica + self.consumers_via_origin;
        if remote == 0 {
            0.0
        } else {
            self.consumers_via_replica as f64 / remote as f64
        }
    }

    /// Accumulates another stats block.
    pub(crate) fn absorb(&mut self, other: &ReplicaStats) {
        self.replicas_created += other.replicas_created;
        self.replicas_retracted += other.replicas_retracted;
        self.consumers_via_replica += other.consumers_via_replica;
        self.consumers_via_origin += other.consumers_via_origin;
        self.origin_messages_saved += other.origin_messages_saved;
    }
}

/// Aggregate stream-reuse effectiveness — the E7 measures.  Per-subscription
/// slices flow up through [`crate::SubscriptionReport`]; the monitor-wide
/// aggregate through `Monitor::reuse_stats`, which also fills
/// `messages_saved` from the network's multicast accounting and `replicas`
/// from the replica bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Deployments that went through the reuse search.
    pub subscriptions: u64,
    /// Deployments where at least one plan node attached to an existing
    /// stream.
    pub hits: u64,
    /// Plan nodes served by existing streams, across all deployments.
    pub covered_nodes: u64,
    /// Operator instances never deployed thanks to coverage.
    pub operators_saved: u64,
    /// Network messages avoided by sharing one physical stream between
    /// subscribers (`NetworkStats::multicast_saved_messages` delta; filled on
    /// the monitor-wide aggregate, zero on per-subscription slices).
    pub messages_saved: u64,
    /// Replica re-publication measures (monitor-wide aggregate only).
    pub replicas: ReplicaStats,
}

impl ReuseStats {
    /// The per-subscription slice of a deployment's reuse outcome.
    pub fn of_report(report: &ReuseReport) -> Self {
        ReuseStats {
            subscriptions: 1,
            hits: u64::from(report.reused_nodes > 0),
            covered_nodes: report.reused_nodes as u64,
            operators_saved: report.operators_saved as u64,
            messages_saved: 0,
            replicas: ReplicaStats::default(),
        }
    }

    /// Fraction of deployments that attached to at least one existing
    /// stream.
    pub fn hit_rate(&self) -> f64 {
        if self.subscriptions == 0 {
            0.0
        } else {
            self.hits as f64 / self.subscriptions as f64
        }
    }

    /// Accumulates another stats block.
    pub(crate) fn absorb(&mut self, other: &ReuseStats) {
        self.subscriptions += other.subscriptions;
        self.hits += other.hits;
        self.covered_nodes += other.covered_nodes;
        self.operators_saved += other.operators_saved;
        self.messages_saved += other.messages_saved;
        self.replicas.absorb(&other.replicas);
    }
}

/// Canonical digest of a Select's parameters, so that two subscriptions with
/// the same filter are recognised as identical by the reuse machinery.
pub fn select_parameters(
    simple: &[AttrCondition],
    patterns: &[p2pmon_xmlkit::PathPattern],
    derived: &[(String, ValueExpr)],
    conditions: &[Condition],
) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut simple_keys: Vec<String> = simple.iter().map(AttrCondition::key).collect();
    simple_keys.sort();
    parts.extend(simple_keys);
    let mut pattern_keys: Vec<String> = patterns.iter().map(|p| p.source().to_string()).collect();
    pattern_keys.sort();
    parts.extend(pattern_keys);
    let mut derived_keys: Vec<String> = derived.iter().map(|(v, _)| format!("let:{v}")).collect();
    derived_keys.sort();
    parts.extend(derived_keys);
    let mut condition_keys: Vec<String> = conditions.iter().map(|c| c.to_string()).collect();
    condition_keys.sort();
    parts.extend(condition_keys);
    parts.join("&")
}

/// Canonical digest of a Join's parameters.
pub fn join_parameters(
    left_key: &(String, String),
    right_key: &(String, String),
    residual: &[Condition],
) -> String {
    let mut parts = vec![format!(
        "{}.{}={}.{}",
        left_key.0, left_key.1, right_key.0, right_key.1
    )];
    let mut residual_keys: Vec<String> = residual.iter().map(|c| c.to_string()).collect();
    residual_keys.sort();
    parts.extend(residual_keys);
    parts.join("&")
}

/// Converts a logical plan node into the reuse algorithm's [`PlanNode`]
/// shape.  Children appear in the same order as the logical node's inputs so
/// that cover paths line up.
pub fn logical_to_plan_node(node: &LogicalNode) -> PlanNode {
    match node {
        LogicalNode::Alerter { function, peer, .. } => {
            PlanNode::alerter(function.clone(), peer.clone())
        }
        LogicalNode::DynamicAlerter {
            function, driver, ..
        } => PlanNode::operator(
            "DynamicAlerter",
            function.clone(),
            vec![logical_to_plan_node(driver)],
        ),
        // Channel sources refer to streams that already exist, but their
        // identity is resolved at deployment time; for covering purposes they
        // are opaque leaves that never match.
        LogicalNode::ChannelIn { peer, stream, .. } => {
            PlanNode::alerter(format!("__channel__{stream}"), peer.clone())
        }
        LogicalNode::Union { inputs, .. } => PlanNode::operator(
            "Union",
            "",
            inputs.iter().map(logical_to_plan_node).collect(),
        ),
        LogicalNode::Select {
            input,
            simple,
            patterns,
            derived,
            conditions,
            ..
        } => PlanNode::operator(
            "Filter",
            select_parameters(simple, patterns, derived, conditions),
            vec![logical_to_plan_node(input)],
        ),
        LogicalNode::Join {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => PlanNode::operator(
            "Join",
            join_parameters(left_key, right_key, residual),
            vec![logical_to_plan_node(left), logical_to_plan_node(right)],
        ),
        LogicalNode::Dedup { input } => {
            PlanNode::operator("DuplicateRemoval", "", vec![logical_to_plan_node(input)])
        }
        LogicalNode::Restructure {
            input, template, ..
        } => PlanNode::operator(
            "Restructure",
            template.source().to_string(),
            vec![logical_to_plan_node(input)],
        ),
        // Aggregates are never published as reusable streams (their output
        // is bounded-size partials, not a subscribable item stream), so the
        // node can never be covered — but its *input* subtrees still
        // participate in the cover search.
        LogicalNode::Aggregate { input, spec, .. } => PlanNode::operator(
            "Aggregate",
            format!("{spec:?}"),
            vec![logical_to_plan_node(input)],
        ),
    }
}

/// Runs the Reuse algorithm over a plan and rewrites covered subtrees into
/// channel subscriptions.  `proximity` scores candidate provider peers
/// (lower = closer), driving replica selection.
pub fn apply_reuse(
    plan: &LogicalNode,
    db: &mut StreamDefinitionDatabase,
    proximity: &dyn Fn(&str) -> u64,
) -> (LogicalNode, ReuseReport) {
    let reuse_plan = logical_to_plan_node(plan);
    let plan_nodes = reuse_plan.size();
    let outcome = ReuseEngine::new(db).cover(&reuse_plan, proximity);
    let mut report = ReuseReport {
        reused_nodes: outcome.reused,
        new_nodes: outcome.new_streams,
        subscribed_channels: Vec::new(),
        reused_defs: Vec::new(),
        operators_saved: 0,
    };
    let rewritten = rewrite(plan, "0", &outcome, &mut report);
    // Every covered subtree collapses to one ChannelIn leaf; the difference
    // in node count is the operator work the deployment never instantiates.
    let rewritten_nodes = logical_to_plan_node(&rewritten).size();
    report.operators_saved = plan_nodes.saturating_sub(rewritten_nodes);
    (rewritten, report)
}

fn rewrite(
    node: &LogicalNode,
    path: &str,
    outcome: &CoverOutcome,
    report: &mut ReuseReport,
) -> LogicalNode {
    if let Some(p2pmon_dht::reuse::NodeCover::Existing { original, provider }) = outcome.cover(path)
    {
        // The whole subtree is served by an existing stream: subscribe to it.
        let var = node
            .output_vars()
            .first()
            .cloned()
            .unwrap_or_else(|| "item".to_string());
        report
            .subscribed_channels
            .push((provider.0.clone(), provider.1.clone()));
        if !report.reused_defs.contains(original) {
            report.reused_defs.push(original.clone());
        }
        return LogicalNode::ChannelIn {
            peer: provider.0.clone(),
            stream: provider.1.clone(),
            var,
        };
    }
    // Not covered: keep the operator, recurse into its children with the same
    // path numbering the cover used.
    match node {
        LogicalNode::Alerter { .. } | LogicalNode::ChannelIn { .. } => node.clone(),
        LogicalNode::DynamicAlerter {
            function,
            var,
            driver,
        } => LogicalNode::DynamicAlerter {
            function: function.clone(),
            var: var.clone(),
            driver: Box::new(rewrite(driver, &format!("{path}.0"), outcome, report)),
        },
        LogicalNode::Union { var, inputs } => LogicalNode::Union {
            var: var.clone(),
            inputs: inputs
                .iter()
                .enumerate()
                .map(|(i, input)| rewrite(input, &format!("{path}.{i}"), outcome, report))
                .collect(),
        },
        LogicalNode::Select {
            var,
            input,
            simple,
            patterns,
            derived,
            conditions,
        } => LogicalNode::Select {
            var: var.clone(),
            input: Box::new(rewrite(input, &format!("{path}.0"), outcome, report)),
            simple: simple.clone(),
            patterns: patterns.clone(),
            derived: derived.clone(),
            conditions: conditions.clone(),
        },
        LogicalNode::Join {
            left,
            right,
            left_key,
            right_key,
            residual,
        } => LogicalNode::Join {
            left: Box::new(rewrite(left, &format!("{path}.0"), outcome, report)),
            right: Box::new(rewrite(right, &format!("{path}.1"), outcome, report)),
            left_key: left_key.clone(),
            right_key: right_key.clone(),
            residual: residual.clone(),
        },
        LogicalNode::Dedup { input } => LogicalNode::Dedup {
            input: Box::new(rewrite(input, &format!("{path}.0"), outcome, report)),
        },
        LogicalNode::Restructure {
            input,
            template,
            derived,
        } => LogicalNode::Restructure {
            input: Box::new(rewrite(input, &format!("{path}.0"), outcome, report)),
            template: template.clone(),
            derived: derived.clone(),
        },
        LogicalNode::Aggregate { var, input, spec } => LogicalNode::Aggregate {
            var: var.clone(),
            input: Box::new(rewrite(input, &format!("{path}.0"), outcome, report)),
            spec: spec.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_dht::{ChordNetwork, StreamDefinition};
    use p2pmon_p2pml::compile_subscription;

    fn subscription_plan() -> LogicalNode {
        compile_subscription(
            r#"for $c in inCOM(<p>meteo.com</p>)
               where $c.callMethod = "GetTemperature"
               return <hit id="{$c.callId}"/>
               by publish as channel "hits";"#,
        )
        .unwrap()
        .root
    }

    #[test]
    fn without_published_streams_everything_is_new() {
        let mut db = StreamDefinitionDatabase::new(ChordNetwork::with_nodes(16, 3));
        let plan = subscription_plan();
        let (rewritten, report) = apply_reuse(&plan, &mut db, &|_| 10);
        assert_eq!(report.reused_nodes, 0);
        assert!(report.subscribed_channels.is_empty());
        assert_eq!(rewritten, plan, "nothing to rewrite");
    }

    #[test]
    fn published_alerter_and_filter_are_reused() {
        let mut db = StreamDefinitionDatabase::new(ChordNetwork::with_nodes(16, 3));
        // Someone already runs the inCOM alerter at meteo.com …
        db.publish(StreamDefinition::source("meteo.com", "src-inCOM", "inCOM"));
        let plan = subscription_plan();
        // … and the very same filter, published from a previous deployment.
        let LogicalNode::Restructure { input, .. } = &plan else {
            panic!()
        };
        let LogicalNode::Select {
            simple,
            patterns,
            derived,
            conditions,
            ..
        } = input.as_ref()
        else {
            panic!()
        };
        let params = select_parameters(simple, patterns, derived, conditions);
        db.publish(StreamDefinition::derived(
            "meteo.com",
            "filtered-7",
            "Filter",
            params,
            vec![("meteo.com".into(), "src-inCOM".into())],
        ));

        let (rewritten, report) = apply_reuse(&plan, &mut db, &|_| 10);
        assert!(report.reused_nodes >= 2);
        assert_eq!(
            report.subscribed_channels,
            vec![("meteo.com".to_string(), "filtered-7".to_string())]
        );
        assert_eq!(
            report.reused_defs, report.subscribed_channels,
            "no replicas in play: the original identity is the provider"
        );
        // Filter + Alerter (2 nodes) collapse into one ChannelIn leaf.
        assert_eq!(report.operators_saved, 1);
        let stats = ReuseStats::of_report(&report);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.subscriptions, 1);
        assert!((stats.hit_rate() - 1.0).abs() < f64::EPSILON);
        // The filter subtree collapsed into a channel subscription.
        let LogicalNode::Restructure { input, .. } = &rewritten else {
            panic!()
        };
        assert!(
            matches!(input.as_ref(), LogicalNode::ChannelIn { stream, .. } if stream == "filtered-7")
        );
    }

    #[test]
    fn digests_are_order_insensitive() {
        use p2pmon_xmlkit::path::CompareOp;
        let a = AttrCondition::new("x", CompareOp::Eq, "1");
        let b = AttrCondition::new("y", CompareOp::Gt, "2");
        assert_eq!(
            select_parameters(&[a.clone(), b.clone()], &[], &[], &[]),
            select_parameters(&[b, a], &[], &[], &[])
        );
    }
}

//! The work-stealing peer scheduler.
//!
//! A dispatch phase hands every [`PeerHost`] with local work to
//! [`run_jobs`]: with one worker the hosts are processed inline, in order —
//! the sequential oracle path — and with `workers > 1` a pool of scoped
//! threads drives them concurrently.  Each worker owns a deque of peer jobs
//! dealt round-robin; a worker whose deque runs dry steals from the back of
//! another worker's deque, so a handful of heavy peers cannot strand the
//! rest of the pool behind them.
//!
//! Correctness does not depend on the schedule: a job only touches its own
//! host's mutable shard (operators, engine, queue, alert batch) plus the
//! immutable [`DispatchSnapshot`], and every cross-peer effect is buffered in
//! the job's [`PeerEffects`].  [`run_jobs`] returns the effects in job order
//! (the monitor's deterministic peer order), so the commit phase — and
//! therefore every observable result — is identical for any worker count.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

use crate::dispatch::{run_peer, DispatchSnapshot, PeerEffects};
use crate::peer::PeerHost;

/// Processes every job (one per peer with local work) and returns their
/// buffered effects in job order.
pub(crate) fn run_jobs(
    jobs: Vec<&mut PeerHost>,
    workers: usize,
    snapshot: &DispatchSnapshot<'_>,
) -> Vec<PeerEffects> {
    let n = jobs.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        // The sequential oracle: same per-peer processing, no threads.
        return jobs
            .into_iter()
            .map(|host| run_peer(host, snapshot))
            .collect();
    }

    // Each job sits in a slot until exactly one worker takes it.
    let slots: Vec<Mutex<Option<&mut PeerHost>>> = jobs
        .into_iter()
        .map(|host| Mutex::new(Some(host)))
        .collect();
    let results: Vec<Mutex<Option<PeerEffects>>> = (0..n).map(|_| Mutex::new(None)).collect();
    // Round-robin deal: worker `w` starts with jobs w, w+workers, w+2·workers…
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();

    thread::scope(|scope| {
        for own in 0..workers {
            let slots = &slots;
            let results = &results;
            let queues = &queues;
            scope.spawn(move || {
                while let Some(job) = next_job(own, queues) {
                    if let Some(host) = slots[job].lock().expect("job slot poisoned").take() {
                        let effects = run_peer(host, snapshot);
                        *results[job].lock().expect("result slot poisoned") = Some(effects);
                    }
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every scheduled job ran")
        })
        .collect()
}

/// Pops the worker's own deque front, or steals from the back of another
/// worker's deque.  `None` means the phase is drained: jobs are fixed up
/// front and never re-enqueued, so an empty sweep is final.
fn next_job(own: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(job) = queues[own].lock().expect("queue poisoned").pop_front() {
        return Some(job);
    }
    for (victim, queue) in queues.iter().enumerate() {
        if victim == own {
            continue;
        }
        if let Some(job) = queue.lock().expect("queue poisoned").pop_back() {
            return Some(job);
        }
    }
    None
}

//! The persistent work-stealing peer scheduler.
//!
//! A dispatch phase hands every [`PeerHost`] with local work to
//! [`SchedulerPool::run`]: with one worker the hosts are processed inline,
//! in order — the sequential oracle path — and with `workers > 1` a
//! *long-lived* pool of threads drives them concurrently.  The pool is spun
//! up once (on the first parallel phase) and parked on a condvar between
//! phases, so a dispatch round pays one notify instead of one `thread::spawn`
//! per worker (~10µs each) — the difference matters for small-batch
//! workloads that run many short phases.
//!
//! Each worker owns a deque of peer jobs dealt round-robin; a worker whose
//! deque runs dry steals from the back of another worker's deque, so a
//! handful of heavy peers cannot strand the rest of the pool behind them.
//!
//! Correctness does not depend on the schedule: a job only touches its own
//! host's mutable shard (operators, engine, queue, alert batch) plus the
//! immutable [`DispatchSnapshot`], and every cross-peer effect is buffered in
//! the job's [`PeerEffects`].  [`SchedulerPool::run`] returns the effects in
//! job order (the monitor's deterministic peer order), so the commit phase —
//! and therefore every observable result — is identical for any worker
//! count.
//!
//! # Why the one `unsafe` block exists
//!
//! The pool threads are `'static`, but a phase's job context borrows the
//! monitor's hosts and snapshot.  The context is handed to the workers as a
//! raw pointer and reborrowed for the duration of one phase only; the
//! hand-off protocol (publish context → wake workers → wait until every
//! worker has finished) guarantees the borrow never outlives the stack frame
//! of [`SchedulerPool::run`], which is exactly what scoped threads would
//! enforce — minus the per-phase spawns.
#![allow(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::thread;

use crate::dispatch::{run_peer, DispatchSnapshot, PeerEffects};
use crate::peer::PeerHost;

/// One phase's shared job context, allocated on the stack of
/// [`SchedulerPool::run`] and reborrowed by the pool workers while the phase
/// is active.
struct PhaseCtx<'env, 'snap> {
    /// Each job sits in a slot until exactly one worker takes it.
    slots: Vec<Mutex<Option<&'env mut PeerHost>>>,
    /// Per-worker deques of job indices (round-robin dealt; stolen from the
    /// back).
    queues: Vec<Mutex<VecDeque<usize>>>,
    /// One result slot per job.
    results: Vec<Mutex<Option<PeerEffects>>>,
    /// The immutable deployment-time view.
    snapshot: &'env DispatchSnapshot<'snap>,
}

impl PhaseCtx<'_, '_> {
    /// Runs one worker's share of the phase: drain the own deque, then steal.
    fn work(&self, own: usize) {
        while let Some(job) = self.next_job(own) {
            if let Some(host) = self.slots[job].lock().expect("job slot poisoned").take() {
                let effects = run_peer(host, self.snapshot);
                *self.results[job].lock().expect("result slot poisoned") = Some(effects);
            }
        }
    }

    /// Pops the worker's own deque front, or steals from the back of another
    /// worker's deque.  `None` means the phase is drained: jobs are fixed up
    /// front and never re-enqueued, so an empty sweep is final.
    fn next_job(&self, own: usize) -> Option<usize> {
        if let Some(queue) = self.queues.get(own) {
            if let Some(job) = queue.lock().expect("queue poisoned").pop_front() {
                return Some(job);
            }
        }
        for (victim, queue) in self.queues.iter().enumerate() {
            if victim == own {
                continue;
            }
            if let Some(job) = queue.lock().expect("queue poisoned").pop_back() {
                return Some(job);
            }
        }
        None
    }
}

/// What the pool's control mutex guards.
#[derive(Default)]
struct PoolState {
    /// Phase counter; workers run one phase per increment.
    phase: u64,
    /// The active phase's context, type-erased (`*const PhaseCtx`).  Only
    /// meaningful while `active > 0` or immediately after a phase was
    /// published.
    ctx: usize,
    /// Workers still running the current phase.
    active: usize,
    /// Set when a worker's phase body panicked.
    panicked: bool,
    /// Tells the workers to exit (pool drop).
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled when a new phase is published or shutdown is requested.
    work_ready: Condvar,
    /// Signaled when the last active worker finishes a phase.
    phase_done: Condvar,
}

/// A lazily spawned, long-lived worker pool (plus the inline sequential
/// path).  Owned by the `Monitor`; dropped with it.
pub(crate) struct SchedulerPool {
    shared: Option<std::sync::Arc<PoolShared>>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl SchedulerPool {
    /// A pool with no threads yet; they are spawned on the first parallel
    /// phase.
    pub(crate) fn new() -> Self {
        SchedulerPool {
            shared: None,
            threads: Vec::new(),
        }
    }

    /// Number of live pool threads (diagnostics / tests).
    pub(crate) fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Processes every job (one per peer with local work) and returns their
    /// buffered effects in job order.
    pub(crate) fn run(
        &mut self,
        jobs: Vec<&mut PeerHost>,
        workers: usize,
        snapshot: &DispatchSnapshot<'_>,
    ) -> Vec<PeerEffects> {
        let n = jobs.len();
        let workers = workers.clamp(1, n.max(1));
        if workers <= 1 {
            // The sequential oracle: same per-peer processing, no threads.
            return jobs
                .into_iter()
                .map(|host| run_peer(host, snapshot))
                .collect();
        }
        self.ensure_threads(workers);
        let pool_size = self.threads.len();

        let ctx = PhaseCtx {
            slots: jobs
                .into_iter()
                .map(|host| Mutex::new(Some(host)))
                .collect(),
            // Round-robin deal over the *scheduled* workers; pool threads
            // beyond that find empty deques and only steal.
            queues: (0..workers)
                .map(|w| Mutex::new((w..n).step_by(workers).collect()))
                .collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            snapshot,
        };
        // The raw-pointer hand-off below bypasses the compiler's auto-trait
        // checking, so re-state what scoped threads would have enforced:
        // pool threads access the context concurrently, which is only sound
        // while `PhaseCtx` (hosts, snapshot, effects) is `Sync`.  A non-Send
        // field sneaking into `PeerHost` or `PeerEffects` becomes a compile
        // error here instead of a data race.
        fn assert_sync<'a>(ctx: &'a PhaseCtx<'_, '_>) -> &'a (dyn Sync + 'a) {
            ctx
        }
        let _ = assert_sync(&ctx);

        let shared = self.shared.as_ref().expect("threads ensured above");
        let panicked = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            // SAFETY-relevant protocol, step 1: publish the borrowed context
            // as an erased pointer and wake every worker.
            state.ctx = (&raw const ctx) as usize;
            state.phase += 1;
            state.active = pool_size;
            state.panicked = false;
            shared.work_ready.notify_all();
            // Step 2: block until every worker has finished the phase — no
            // worker can touch `ctx` after `active` hits zero, so the borrow
            // ends before this function's stack frame does.
            while state.active > 0 {
                state = shared.phase_done.wait(state).expect("pool state poisoned");
            }
            state.panicked
        };
        // Asserted only after the guard is released: panicking with the
        // state mutex held would poison it and turn the unwind into a
        // double panic (abort) in the pool's Drop.
        assert!(!panicked, "a scheduler worker panicked");

        ctx.results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every scheduled job ran")
            })
            .collect()
    }

    /// Spawns the pool threads on first use (or grows the pool when a larger
    /// worker count is requested).
    fn ensure_threads(&mut self, workers: usize) {
        let shared = self
            .shared
            .get_or_insert_with(|| {
                std::sync::Arc::new(PoolShared {
                    state: Mutex::new(PoolState::default()),
                    work_ready: Condvar::new(),
                    phase_done: Condvar::new(),
                })
            })
            .clone();
        while self.threads.len() < workers {
            let shared = shared.clone();
            let own = self.threads.len();
            // A thread joining a pool that already ran phases must not
            // mistake the current phase counter for fresh work.
            let start_phase = shared.state.lock().expect("pool state poisoned").phase;
            self.threads.push(thread::spawn(move || {
                let mut seen_phase = start_phase;
                loop {
                    let ctx_ptr = {
                        let mut state = shared.state.lock().expect("pool state poisoned");
                        loop {
                            if state.shutdown {
                                return;
                            }
                            if state.phase != seen_phase {
                                seen_phase = state.phase;
                                break state.ctx;
                            }
                            state = shared.work_ready.wait(state).expect("pool state poisoned");
                        }
                    };
                    // SAFETY: `ctx_ptr` was published by `run` together with
                    // this phase number, and `run` blocks until this worker
                    // (and every other) decrements `active` below — so the
                    // PhaseCtx outlives this reborrow, and all access to its
                    // interior goes through its own mutexes.
                    let ctx = unsafe { &*(ctx_ptr as *const PhaseCtx<'static, 'static>) };
                    let outcome = catch_unwind(AssertUnwindSafe(|| ctx.work(own)));
                    // A panicked sibling may have poisoned a PhaseCtx mutex,
                    // but the control mutex must keep working so `active`
                    // always reaches zero and `run` never hangs.
                    let mut state = shared
                        .state
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if outcome.is_err() {
                        state.panicked = true;
                    }
                    state.active -= 1;
                    if state.active == 0 {
                        shared.phase_done.notify_all();
                    }
                }
            }));
        }
    }
}

impl Drop for SchedulerPool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            // The pool may be dropped while unwinding from a worker panic;
            // shutting down must not double-panic on a poisoned mutex.
            let mut state = shared
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            state.shutdown = true;
            drop(state);
            shared.work_ready.notify_all();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

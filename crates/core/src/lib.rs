//! # p2pmon-core
//!
//! The P2P Monitor (P2PM) itself — the paper's primary contribution.
//!
//! P2PM is a peer-to-peer system that monitors *other* P2P systems.  Each
//! P2PM peer runs at least a **Subscription Manager**; it may also host
//! alerters, stream processors and publishers (Figure 2 of the paper).  A
//! user hands a P2PML subscription to a manager peer, which:
//!
//! 1. compiles it into an algebraic monitoring plan (`p2pmon-p2pml`),
//! 2. optimizes the plan — selections are pushed next to the sources and the
//!    operators are *placed* on peers ([`placement`]),
//! 3. searches the Stream Definition Database for existing streams that
//!    already cover parts of the plan and rewires the plan to subscribe to
//!    them instead of recomputing ([`reuse`]),
//! 4. deploys the per-peer fragments, connecting them with channels, and
//!    publishes the definitions of the new streams so that *future*
//!    subscriptions can reuse them,
//! 5. runs the whole thing over the simulated network, delivering results to
//!    the requested publisher: a channel, an e-mail digest, an XML/XHTML file
//!    or an RSS feed ([`sink`]).
//!
//! The entry point is [`Monitor`]: it owns the simulated network
//! (`p2pmon-net`), the DHT-backed Stream Definition Database (`p2pmon-dht`),
//! the alerters (`p2pmon-alerters`) and every deployed operator, and it
//! drives the discrete-event simulation that the examples, the integration
//! tests and the benchmark harness all use.

pub mod deployment;
pub mod dispatch;
pub mod monitor;
pub mod peer;
pub mod placement;
pub mod reuse;
pub mod runtime;
pub(crate) mod scheduler;
pub mod sink;

pub use dispatch::DispatchStats;
pub use monitor::{
    BookkeepingSnapshot, Monitor, MonitorConfig, ReplicaPolicy, SubscriptionHandle,
    SubscriptionReport,
};
pub use peer::PeerHost;
pub use placement::{
    place, place_with, push_selections_below_unions, PlacedPlan, PlacedTask, PlacementRates,
    PlacementStrategy, TaskKind,
};
pub use reuse::{apply_reuse, logical_to_plan_node, ReplicaStats, ReuseReport, ReuseStats};
pub use runtime::{RuntimeOperator, RuntimeOutput};
pub use sink::{Sink, SinkKind};

#[cfg(test)]
mod lib_tests {
    use super::*;
    use p2pmon_alerters::SoapCall;

    #[test]
    fn end_to_end_meteo_subscription_detects_slow_answers() {
        let mut monitor = Monitor::new(MonitorConfig::default());
        for peer in ["p", "a.com", "b.com", "meteo.com"] {
            monitor.add_peer(peer);
        }
        let handle = monitor
            .submit("p", p2pmon_p2pml::METEO_SUBSCRIPTION)
            .expect("figure 1 subscription must deploy");

        // A slow GetTemperature call from a.com and a fast one from b.com.
        monitor.inject_soap_call(&SoapCall::new(
            1,
            "http://a.com",
            "http://meteo.com",
            "GetTemperature",
            1_000,
            1_015,
        ));
        monitor.inject_soap_call(&SoapCall::new(
            2,
            "http://b.com",
            "http://meteo.com",
            "GetTemperature",
            1_000,
            1_002,
        ));
        monitor.run_until_idle();

        let incidents = monitor.results(&handle);
        assert_eq!(incidents.len(), 1, "only the slow call is an incident");
        assert_eq!(incidents[0].name, "incident");
        assert_eq!(incidents[0].attr("type"), Some("slowAnswer"));
        assert_eq!(incidents[0].child("client").unwrap().text(), "http://a.com");
    }
}

//! Alert, item and channel routing between [`PeerHost`]s.
//!
//! This module carries the monitor's data plane: the routing tables built at
//! deployment time, the engine-gated batched fan-out of alerts into hosted
//! tasks, the per-peer work loops and the channel/network delivery glue.
//!
//! Every dispatch round is a two-phase step:
//!
//! 1. **Parallel phase** — every peer with local work is handed to the
//!    work-stealing scheduler (`crate::scheduler`, sized by
//!    [`crate::MonitorConfig::workers`]).  A worker owns the whole
//!    [`PeerHost`] shard: it drains the peer's `PendingAlert` batch —
//!    deduplicating identical documents and running **one** amortized pass
//!    of the shared [`FilterEngine`] (preFilter → AESFilter → YFilterσ) per
//!    unique document ([`p2pmon_filter::FilterEngine::match_batch`]) — and
//!    then runs the work queue until empty.  Only matched subscriptions'
//!    operators execute; the `Select` operator keeps its LET-derivation /
//!    general-condition tail as the residual check.  Cross-peer outputs are
//!    buffered as `Effect`s; nothing touches the monitor façade.
//! 2. **Commit phase** — the buffered effects are applied in deterministic
//!    peer order: channel multicasts and publisher deliveries hit the
//!    network and the sinks exactly as the sequential path would, so results
//!    are identical for any worker count (`workers = 1` *is* the sequential
//!    path and serves as the equivalence oracle).
//!
//! Channels are *shared physical streams*: every task output is also
//! multicast on the task's canonical output channel whenever reuse
//! subscribers are attached (`DispatchSnapshot::tap`), and a channel
//! emission sends **one** message per distinct destination peer — all of a
//! peer's subscribers ride it (`Monitor::multicast_stream`); subscribers
//! hosted on the producing peer attach with no network hop at all.  Messages
//! avoided this way are recorded as
//! `p2pmon_net::NetworkStats::multicast_saved_messages` (E7).
//!
//! Setting [`crate::MonitorConfig::naive_dispatch`] disables the engine and
//! fans every alert out to every consumer, re-evaluating each `Select`
//! linearly — the pre-decomposition behaviour, kept as a second oracle.
//!
//! [`FilterEngine`]: p2pmon_filter::FilterEngine

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use p2pmon_streams::binding::TUPLE_TAG;
use p2pmon_streams::ChannelId;
use p2pmon_xmlkit::Element;

use crate::monitor::{DeployedSubscription, Monitor};
use crate::peer::{PeerHost, PendingAlert, Work};
use crate::placement::TaskKind;

/// A shared list of delivery targets `(subscription, task, port)` — one
/// alert batch fans out to the same consumers, so the list is built once.
type SharedTargets = Arc<Vec<(usize, usize, usize)>>;

/// How a task's output is routed.  Independently of the route, every task
/// output is also multicast on the task's canonical output channel whenever
/// that channel has live subscribers (stream reuse attaching downstream of a
/// running operator) — see [`DispatchSnapshot::tap`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Route {
    /// Same-peer edge: enqueue directly for the consumer task.
    Local { task: usize, port: usize },
    /// Cross-peer edge or published output: multicast on this channel to
    /// every registered consumer.
    Channel { channel: ChannelId },
    /// The plan root: deliver to the subscription's sink (and, when the BY
    /// clause publishes a channel, also to that channel's subscribers).
    Publisher,
    /// The task's plan-internal consumer was torn down, but the task itself
    /// survives because its output stream still has subscribers: outputs go
    /// only to the canonical channel.
    Dropped,
}

/// The deployment-time routing tables shared by every peer.
#[derive(Default)]
pub(crate) struct RoutingTable {
    /// (function, monitored peer) → consumer source tasks.
    pub source_consumers: HashMap<(String, String), Vec<(usize, usize)>>,
    /// function → dynamic-source tasks (membership-filtered feeds).
    pub dynamic_consumers: HashMap<String, Vec<(usize, usize)>>,
    /// channel → consumer (subscription, task, port).
    pub channel_consumers: HashMap<ChannelId, Vec<(usize, usize, usize)>>,
    /// Items published on externally visible channels (BY channel clauses).
    pub published_channels: HashMap<ChannelId, Vec<Arc<Element>>>,
}

/// Counters for the engine-gated dispatch path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Documents run through a peer's shared filter engine.
    pub engine_documents: u64,
    /// Engine passes skipped because an identical document was already
    /// filtered in the same per-peer batch (batched-dispatch dedup).
    pub batch_dedup_hits: u64,
    /// Gated deliveries that passed the engine (residual check still runs).
    pub gate_passes: u64,
    /// Gated deliveries skipped because the engine rejected them — work the
    /// naive path would have spent on a full `Select` evaluation.
    pub gate_rejections: u64,
    /// Deliveries that bypassed the engine (non-Select consumers, tuple
    /// items, or `naive_dispatch` mode).
    pub plain_deliveries: u64,
    /// Deliveries discarded because their host peer was down: queued work
    /// items plus batched alert targets.  Batched targets are counted before
    /// their engine pass runs, so gated targets the engine would have
    /// rejected are included — the counter measures deliveries the peer
    /// never got to attempt, not results lost.
    pub dropped_by_failure: u64,
    /// Bytes deep-copied out of the shared `Arc` plane at sink delivery —
    /// the single remaining copy point of the zero-copy hot path (results
    /// are detached so `Monitor::results` can hand out owned trees).
    pub sink_clone_bytes: u64,
}

impl DispatchStats {
    /// Accumulates another stats block (merging per-worker counters).
    pub(crate) fn absorb(&mut self, other: &DispatchStats) {
        self.engine_documents += other.engine_documents;
        self.batch_dedup_hits += other.batch_dedup_hits;
        self.gate_passes += other.gate_passes;
        self.gate_rejections += other.gate_rejections;
        self.plain_deliveries += other.plain_deliveries;
        self.dropped_by_failure += other.dropped_by_failure;
        self.sink_clone_bytes += other.sink_clone_bytes;
    }
}

/// The immutable, deployment-time view every scheduler worker shares during
/// a parallel phase: subscription plans and routes.  All per-task mutable
/// state (operators, engines, queues) lives in the per-peer shards, so
/// workers never contend on the monitor façade.
pub(crate) struct DispatchSnapshot<'a> {
    /// The deployed subscriptions (placements and routes only).
    pub subs: &'a [DeployedSubscription],
    /// The channel-consumer registrations, read-only during a phase: lets a
    /// worker see whether a task's canonical output channel has live
    /// subscribers (reuse taps) without touching the routing tables.
    pub taps: &'a HashMap<ChannelId, Vec<(usize, usize, usize)>>,
    /// Bypass the shared engines (naive fan-out oracle).
    pub naive_dispatch: bool,
    /// The logical clock at phase start (constant during a phase).
    pub now: u64,
}

/// A channel emission plan: the channel plus its subscribers grouped by
/// destination peer (one shared target list per peer), computed once per
/// batch by [`Monitor::multicast_plan`].
pub(crate) struct MulticastPlan {
    channel: ChannelId,
    by_peer: Vec<(p2pmon_net::PeerId, SharedTargets)>,
}

/// A side effect a peer's local processing defers to the commit phase.
pub(crate) enum Effect {
    /// Multicast a task output on its channel.
    Channel {
        /// The emitting channel.
        channel: ChannelId,
        /// The shared output tree.
        output: Arc<Element>,
    },
    /// Deliver a plan-root output to the subscription's publisher.
    Result {
        /// The subscription index.
        sub: usize,
        /// The shared output tree.
        output: Arc<Element>,
    },
}

/// Everything one peer's phase produced: buffered cross-peer effects plus
/// the counters to merge into the façade.
#[derive(Default)]
pub(crate) struct PeerEffects {
    /// Deferred effects, in generation order.
    pub effects: Vec<Effect>,
    /// Dispatch counters accumulated by this worker.
    pub stats: DispatchStats,
    /// Operator invocations performed by this worker.
    pub operator_invocations: u64,
}

impl DispatchSnapshot<'_> {
    /// The canonical output channel of a task, when it currently has
    /// subscribers beyond the plan-internal consumer (reuse attachments).
    /// Not consulted for [`Route::Channel`] tasks — there the route's
    /// multicast already reaches every registered consumer.
    fn tap(&self, sub: usize, task: usize) -> Option<&ChannelId> {
        let channel = &self.subs[sub].channels[task];
        match self.taps.get(channel) {
            Some(consumers) if !consumers.is_empty() => Some(channel),
            _ => None,
        }
    }

    /// Resolves the engine gate for one delivery target, if any: either the
    /// target itself is a hosted `Select`, or it is a pass-through source
    /// whose local downstream is one (in which case the pass-through hop is
    /// collapsed and the select becomes the effective target).
    fn resolve_gate(
        &self,
        host: &PeerHost,
        sub: usize,
        task: usize,
        port: usize,
        tuple: bool,
    ) -> Option<(usize, p2pmon_filter::SubscriptionId)> {
        if self.naive_dispatch || port != 0 || tuple {
            return None;
        }
        let placed = &self.subs[sub].placed;
        match &placed.tasks[task].kind {
            TaskKind::Select { .. } => host.gate(sub, task).map(|id| (task, id)),
            // Pass-through sources: gate on (and collapse into) the Select
            // they feed on the same peer.
            TaskKind::Source { .. } | TaskKind::ChannelSource { .. } => {
                // …unless the pass-through's own output channel has live
                // subscribers (a replica forward, or reuse attached below a
                // plan-internal edge): those subscribers get *every* item of
                // the stream, not just what survives the local consumer's
                // filter, so the pass-through must actually run.
                if self.tap(sub, task).is_some() {
                    return None;
                }
                match &self.subs[sub].routes[task] {
                    Route::Local {
                        task: next,
                        port: 0,
                    } if matches!(placed.tasks[*next].kind, TaskKind::Select { .. }) => {
                        host.gate(sub, *next).map(|id| (*next, id))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// Runs one peer's whole local phase: the batched alert dispatch, then the
/// work queue until it is empty.  Called by scheduler workers (and inline on
/// the sequential path).
pub(crate) fn run_peer(host: &mut PeerHost, snapshot: &DispatchSnapshot<'_>) -> PeerEffects {
    let mut out = PeerEffects::default();
    drain_alert_batch(host, snapshot, &mut out);
    while let Some(work) = host.queue.pop_front() {
        execute(host, snapshot, work, &mut out);
    }
    out
}

/// Drains the peer's pending alerts as one batch: resolves every delivery
/// target's engine gate, runs one amortized engine pass per *unique* gated
/// document, and enqueues work for the matched (or ungated) targets.
fn drain_alert_batch(host: &mut PeerHost, snapshot: &DispatchSnapshot<'_>, out: &mut PeerEffects) {
    if host.pending_alerts.is_empty() {
        return;
    }
    let batch = std::mem::take(&mut host.pending_alerts);
    // Gate resolution depends only on the target list and on whether the
    // document is a tuple — never on the document's content — and a whole
    // feed fans out through one shared targets `Arc`, so each distinct
    // (targets, tuple-ness) pair resolves once per batch instead of once per
    // alert.  (All the `Arc`s are alive for the duration of the batch, so
    // pointer identity is a sound cache key.)
    // The resolved form is split by gating so the per-alert loop below never
    // walks rejected targets: ungated targets deliver unconditionally, and
    // gated targets are looked up *from the engine's matched ids* — per
    // alert that is O(matched) instead of O(targets).
    struct ResolvedTargets {
        /// Targets delivered without an engine gate: (sub, task, port).
        ungated: Vec<(usize, usize, usize)>,
        /// Gated targets, sorted by filter id: (id, sub, select_task).
        gated: Vec<(p2pmon_filter::SubscriptionId, usize, usize)>,
    }
    let mut resolution: HashMap<(usize, bool), ResolvedTargets> = HashMap::new();
    let keys: Vec<(usize, bool)> = batch
        .iter()
        .map(|alert| {
            let tuple = alert.doc.name == TUPLE_TAG;
            let key = (Arc::as_ptr(&alert.targets) as usize, tuple);
            resolution.entry(key).or_insert_with(|| {
                let mut ungated = Vec::new();
                let mut gated = Vec::new();
                for &(sub, task, port) in alert.targets.iter() {
                    match snapshot.resolve_gate(host, sub, task, port, tuple) {
                        Some((select_task, id)) => gated.push((id, sub, select_task)),
                        None => ungated.push((sub, task, port)),
                    }
                }
                gated.sort_unstable_by_key(|&(id, _, _)| id);
                ResolvedTargets { ungated, gated }
            });
            key
        })
        .collect();

    // One amortized engine pass per unique document that has at least one
    // gated target in this batch.  `gated_pos[i]` maps a batch position to
    // its position in the engine's input (and thus its outcome index).
    let mut gated_pos: Vec<Option<usize>> = vec![None; batch.len()];
    let mut docs: Vec<&Element> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        if !resolution[key].gated.is_empty() {
            gated_pos[i] = Some(docs.len());
            docs.push(batch[i].doc.as_ref());
        }
    }
    let batch_outcome = host.engine.match_batch(&docs);
    out.stats.engine_documents += batch_outcome.passes() as u64;
    out.stats.batch_dedup_hits += (docs.len() - batch_outcome.passes()) as u64;

    for (i, (alert, key)) in batch.iter().zip(&keys).enumerate() {
        let resolved = &resolution[key];
        for &(sub, task, port) in &resolved.ungated {
            out.stats.plain_deliveries += 1;
            let item = host.make_item(snapshot.now, alert.doc.clone());
            host.enqueue(Work {
                sub,
                task,
                port,
                item,
                prefiltered: false,
            });
        }
        let Some(pos) = gated_pos[i] else { continue };
        // Deliver only to the gated targets the engine matched: the engine's
        // matched set covers the whole host, so each matched id is looked up
        // in this alert's (sorted) gated targets — ids without a target here
        // belong to other feeds and are skipped.
        let outcome = batch_outcome.outcome(pos);
        let mut hits = 0u64;
        for &id in &outcome.matched {
            let mut at = resolved.gated.partition_point(|&(gid, _, _)| gid < id);
            while at < resolved.gated.len() && resolved.gated[at].0 == id {
                let (_, sub, select_task) = resolved.gated[at];
                hits += 1;
                let item = host.make_item(snapshot.now, alert.doc.clone());
                host.enqueue(Work {
                    sub,
                    task: select_task,
                    port: 0,
                    item,
                    prefiltered: true,
                });
                at += 1;
            }
        }
        out.stats.gate_passes += hits;
        out.stats.gate_rejections += resolved.gated.len() as u64 - hits;
    }
}

/// Runs one work item through its operator and routes the outputs: same-peer
/// edges re-enter the host's queue, everything else is buffered as an effect.
fn execute(
    host: &mut PeerHost,
    snapshot: &DispatchSnapshot<'_>,
    work: Work,
    out: &mut PeerEffects,
) {
    out.operator_invocations += 1;
    let Work {
        sub,
        task,
        port,
        item,
        prefiltered,
    } = work;
    let outputs = {
        let operator = host
            .operators
            .get_mut(&(sub, task))
            .expect("every placed task's operator lives in its host's shard");
        if prefiltered {
            operator.on_item_prefiltered(port, &item).items
        } else {
            operator.on_item(port, &item).items
        }
    };
    if outputs.is_empty() {
        return;
    }
    let route = snapshot.subs[sub].routes[task];
    // Live stream reuse: whatever the plan-internal route, subscribers of
    // the task's canonical output channel receive every output — a covered
    // subtree attaches here, to the producing operator, with no manager hop
    // and no re-deployment.  (A Channel route already multicasts to every
    // registered consumer, taps included.)
    let tap = match &route {
        Route::Channel { .. } => None,
        _ => snapshot.tap(sub, task),
    };
    for output in outputs {
        if let Some(&channel) = tap {
            out.effects.push(Effect::Channel {
                channel,
                output: Arc::clone(&output),
            });
        }
        match route {
            Route::Local { task, port } => {
                let item = host.make_item(snapshot.now, output);
                host.enqueue(Work {
                    sub,
                    task,
                    port,
                    item,
                    prefiltered: false,
                });
            }
            Route::Channel { channel } => out.effects.push(Effect::Channel { channel, output }),
            Route::Publisher => out.effects.push(Effect::Result { sub, output }),
            Route::Dropped => {}
        }
    }
}

impl Monitor {
    /// Enqueues a payload for a task on whichever peer hosts it (item
    /// creation happens on that host).
    pub(crate) fn enqueue_data(
        &mut self,
        sub: usize,
        task: usize,
        port: usize,
        data: impl Into<Arc<Element>>,
    ) {
        let now = self.network.now();
        let peer = &self.subscriptions[sub].placed.tasks[task].peer;
        let host = self
            .hosts
            .get_mut(peer)
            .expect("every placed task's host is created at deployment");
        let item = host.make_item(now, data);
        host.enqueue(Work {
            sub,
            task,
            port,
            item,
            prefiltered: false,
        });
    }

    /// Feeds an alert to dynamic-source tasks (membership-filtered feeds);
    /// they filter per item, so the engine does not gate them.
    pub(crate) fn feed_dynamic(
        &mut self,
        origin: &str,
        consumers: &[(usize, usize)],
        alert: &Arc<Element>,
    ) {
        for &(sub, task) in consumers {
            let task_peer = self.subscriptions[sub].placed.tasks[task].peer.clone();
            if task_peer != origin {
                // Account the transfer of the raw alert to the dynamic source.
                self.network
                    .send(origin, &task_peer, None, Arc::clone(alert));
            }
            self.enqueue_data(sub, task, 0, Arc::clone(alert));
        }
    }

    /// Drains every live peer's alerters into the consuming peers' alert
    /// batches (processed — engine-gated and deduplicated — by the next
    /// dispatch phase).
    pub(crate) fn drain_alerters(&mut self) {
        let mut feeds: Vec<(String, String, Vec<Element>)> = Vec::new();
        // Iterated in place: ticking a storm of idle peers must not allocate
        // per peer (`network` and `hosts` are disjoint fields, so the downed
        // check borrows alongside the mutable walk).
        let network = &self.network;
        for (peer, host) in self.hosts.iter_mut() {
            if network.is_down(peer) {
                continue;
            }
            for (function, alerts) in host.alerters.drain_all() {
                feeds.push((function.to_string(), peer.clone(), alerts));
            }
        }

        for (function, peer, alerts) in feeds {
            let consumers = self
                .routing
                .source_consumers
                .get(&(function.clone(), peer.clone()))
                .cloned()
                .unwrap_or_default();
            // Every alert of this feed fans out to the same consumers: build
            // the target list once and share it across the batch.
            let targets: Arc<Vec<(usize, usize, usize)>> = Arc::new(
                consumers
                    .iter()
                    .map(|&(sub, task)| (sub, task, 0))
                    .collect(),
            );
            let dynamic = self
                .routing
                .dynamic_consumers
                .get(&function)
                .cloned()
                .unwrap_or_default();
            // Subscribers of the alerter's *published source stream* (other
            // subscriptions that reuse `src-<function>@peer`) receive every
            // alert as one physical multicast from the alerting peer; the
            // per-peer grouping is computed once for the whole feed.
            let source_channel = ChannelId::new(peer.clone(), format!("src-{function}"));
            let source_plan = self.multicast_plan(&source_channel);
            let now = self.network.now();
            for alert in alerts {
                // Wrap once; every consumer below shares the same tree.
                let alert = Arc::new(alert);
                // Source-channel rates are measured exactly once per alert:
                // here when nobody multicasts the feed, otherwise by the
                // multicast itself (which sees the same channel id).
                if source_plan.is_none() {
                    self.rate_table
                        .observe(source_channel, now, alert.byte_size());
                }
                if !targets.is_empty() {
                    self.hosts
                        .get_mut(&peer)
                        .expect("alerting peer is hosted")
                        .pending_alerts
                        .push(PendingAlert {
                            doc: Arc::clone(&alert),
                            targets: Arc::clone(&targets),
                        });
                }
                if let Some(plan) = &source_plan {
                    self.run_multicast(plan, &alert);
                }
                // Membership alerters feed dynamic sources through the plan
                // itself (port 1), so only non-membership functions are
                // fanned out here.
                if function != "areRegistered" {
                    self.feed_dynamic(&peer.clone(), &dynamic, &alert);
                }
            }
        }
    }

    /// Runs dispatch phases until every peer's batch and queue are empty.
    /// Work queued on a downed peer is discarded (the peer's processors are
    /// gone with it).
    pub(crate) fn process_pending(&mut self) {
        // Workers beyond the host's actual parallelism cannot help — on a
        // single-core host they only add hand-off overhead — so the phase
        // runs with at most one worker per available core (`workers <= 1`
        // takes the inline sequential path).
        let workers = self.effective_workers();
        // Channel-consumer registrations and placements are immutable while
        // dispatch runs, so one multicast plan per channel serves every
        // commit of this call instead of being regrouped per emitted item.
        let mut plan_cache: HashMap<ChannelId, Option<std::rc::Rc<MulticastPlan>>> = HashMap::new();
        loop {
            // Downed peers lose their batched alerts and queued work.  The
            // sweep only runs while a failure is active — the healthy path
            // (every round of a large storm) skips the whole-map walk.
            if self.network.any_down() {
                let network = &self.network;
                for (peer, host) in self.hosts.iter_mut() {
                    if !network.is_down(peer) {
                        continue;
                    }
                    let dropped = host.queue.len() as u64
                        + host
                            .pending_alerts
                            .iter()
                            .map(|alert| alert.targets.len() as u64)
                            .sum::<u64>();
                    if dropped > 0 {
                        host.queue.clear();
                        host.pending_alerts.clear();
                        self.dispatch_stats.dropped_by_failure += dropped;
                    }
                }
            }

            // Parallel phase: hand every peer with local work to the
            // persistent worker pool; workers only touch their own host's
            // shard plus the immutable snapshot.
            let results = {
                let snapshot = DispatchSnapshot {
                    subs: &self.subscriptions,
                    taps: &self.routing.channel_consumers,
                    naive_dispatch: self.config.naive_dispatch,
                    now: self.network.now(),
                };
                let jobs: Vec<&mut PeerHost> = self
                    .hosts
                    .values_mut()
                    .filter(|host| host.has_local_work())
                    .collect();
                if jobs.is_empty() {
                    break;
                }
                self.scheduler.run(jobs, workers, &snapshot)
            };

            // Commit phase: apply the buffered effects in deterministic peer
            // order, exactly as the sequential path would have.
            for result in results {
                self.dispatch_stats.absorb(&result.stats);
                self.operator_invocations += result.operator_invocations;
                for effect in result.effects {
                    match effect {
                        Effect::Channel { channel, output } => {
                            let plan = plan_cache
                                .entry(channel)
                                .or_insert_with(|| {
                                    self.multicast_plan(&channel).map(std::rc::Rc::new)
                                })
                                .clone();
                            if let Some(plan) = plan {
                                self.run_multicast(&plan, &output);
                            }
                        }
                        Effect::Result { sub, output } => self.deliver_result(sub, output),
                    }
                }
            }
        }
    }

    /// The per-destination-peer grouping of a channel's subscribers, built
    /// once and reused across a batch of emissions (every alert of a feed
    /// fans out to the same consumers).  `None` when nobody subscribes.
    pub(crate) fn multicast_plan(&self, channel: &ChannelId) -> Option<MulticastPlan> {
        let consumers = self.routing.channel_consumers.get(channel)?;
        if consumers.is_empty() {
            return None;
        }
        let mut by_peer: BTreeMap<p2pmon_net::PeerId, Vec<(usize, usize, usize)>> = BTreeMap::new();
        for &(sub, task, port) in consumers {
            let peer = p2pmon_net::PeerId::from(&self.subscriptions[sub].placed.tasks[task].peer);
            by_peer.entry(peer).or_default().push((sub, task, port));
        }
        Some(MulticastPlan {
            channel: *channel,
            by_peer: by_peer
                .into_iter()
                .map(|(peer, targets)| (peer, Arc::new(targets)))
                .collect(),
        })
    }

    /// Emits one item according to a multicast plan.
    pub(crate) fn run_multicast(&mut self, plan: &MulticastPlan, output: &Arc<Element>) {
        let producer = plan.channel.peer;
        // Every emitted item updates the channel's measured rate; placement
        // and the replica policy read these through the monitor's rate table.
        let now = self.network.now();
        self.rate_table
            .observe(plan.channel, now, output.byte_size());
        let mut saved = 0u64;
        let mut sent = 0u64;
        for &(peer, ref targets) in &plan.by_peer {
            if peer == producer {
                // Local attachment: straight into the peer's alert batch.
                if !self.network.is_down(&peer) {
                    saved += targets.len() as u64;
                    self.hosts
                        .get_mut(peer.as_str())
                        .expect("consumer peer is hosted")
                        .pending_alerts
                        .push(PendingAlert {
                            doc: Arc::clone(output),
                            targets: Arc::clone(targets),
                        });
                }
            } else if self
                .network
                .send(producer, peer, Some(plan.channel), Arc::clone(output))
                .is_some()
            {
                // Only messages that actually went out count as shared; a
                // drop (downed peer, failure injection) saved nothing.
                saved += targets.len() as u64 - 1;
                sent += 1;
            }
        }
        self.network.record_multicast_saving(saved);
        // A multicast on a replica channel is the forwarded hop of replica
        // re-publication: the consuming peer carries fan-out messages the
        // origin would otherwise have sent itself.
        if self.replica_channels.contains_key(&plan.channel) {
            self.network.record_replica_forward(sent);
        }
    }

    /// Delivers a plan-root output to the subscription's sink.  (Channel
    /// subscribers — the BY-channel audience and any reuse attachments — are
    /// served by the root task's canonical-channel multicast, straight from
    /// the producing peer.)
    fn deliver_result(&mut self, sub_idx: usize, output: Arc<Element>) {
        if self.subscriptions[sub_idx].retired {
            return;
        }
        // Keep the root channel's rate fresh even when nobody taps it yet:
        // a later subscription deciding whether to reuse this stream needs a
        // measured rate, and the multicast path (which also observes) only
        // runs once consumers exist.
        let root_channel = {
            let sub = &self.subscriptions[sub_idx];
            sub.channels[sub.placed.root]
        };
        let tapped = self
            .routing
            .channel_consumers
            .get(&root_channel)
            .is_some_and(|consumers| !consumers.is_empty());
        if !tapped {
            let now = self.network.now();
            self.rate_table
                .observe(root_channel, now, output.byte_size());
        }
        // Ship the result from the peer that produced it to the manager's
        // publisher (counted as network traffic when they differ).
        let root_peer = {
            let sub = &self.subscriptions[sub_idx];
            sub.placed.tasks[sub.placed.root].peer.clone()
        };
        let manager_peer = self.subscriptions[sub_idx].manager.clone();
        if root_peer != manager_peer {
            self.network
                .send(&root_peer, &manager_peer, None, Arc::clone(&output));
        }
        // The sink is the one place a result tree is deep-copied: delivered
        // results are owned history, detached from the shared pipeline.
        self.dispatch_stats.sink_clone_bytes += output.byte_size() as u64;
        self.subscriptions[sub_idx].sink.deliver((*output).clone());
        if let Some(channel) = self.subscriptions[sub_idx].published_channel {
            self.routing
                .published_channels
                .entry(channel)
                .or_default()
                .push(output);
        }
    }

    /// Delivers in-flight network messages and batches channel traffic into
    /// the consuming peers' alert inboxes (engine-gated and deduplicated by
    /// the next dispatch phase).  Returns the number of delivered messages.
    pub(crate) fn deliver_network(&mut self) -> usize {
        let delivered = self.network.run_until_idle();
        if delivered == 0 {
            return 0;
        }
        let peers: Vec<String> = self.peers.iter().cloned().collect();
        for peer in peers {
            // Per-channel targets are the same for every message of a round:
            // compute once and share the list across the batch.
            let mut channel_targets: HashMap<ChannelId, SharedTargets> = HashMap::new();
            for message in self.network.take_inbox(&peer) {
                let Some(channel) = message.channel else {
                    continue;
                };
                let targets = channel_targets
                    .entry(channel)
                    .or_insert_with(|| {
                        Arc::new(
                            self.routing
                                .channel_consumers
                                .get(&channel)
                                .cloned()
                                .unwrap_or_default()
                                .into_iter()
                                .filter(|&(sub, task, _)| {
                                    self.subscriptions[sub].placed.tasks[task].peer == peer
                                })
                                .collect(),
                        )
                    })
                    .clone();
                if targets.is_empty() {
                    continue;
                }
                self.hosts
                    .get_mut(&peer)
                    .expect("inbox peer is hosted")
                    .pending_alerts
                    .push(PendingAlert {
                        doc: message.payload,
                        targets,
                    });
            }
        }
        delivered
    }

    /// Round-boundary sketch pass.  Every dirty leaf/merge stage serializes
    /// the partial it accumulated this round and forwards it along the
    /// task's normal route — one bounded-size message per stage per round,
    /// however many raw items the stage absorbed — and every root stage due
    /// per its `every` cadence materializes an `<aggregate>` answer into
    /// the subscription's ordinary delivery path.  Returns `true` while any
    /// stage flushed or still holds unpropagated state, so
    /// [`Monitor::run_until_idle`] keeps ticking until the merge tree has
    /// fully drained into root answers.
    fn flush_sketches(&mut self) -> bool {
        // Collect first (per-host mutable walk), route after (routing needs
        // the whole façade).  Partials are sorted into (sub, task) order so
        // the committed effects are identical for any host-map iteration
        // order, mirroring the deterministic commit phase of
        // `process_pending`.
        let mut flushed: Vec<(usize, usize, Element)> = Vec::new();
        let mut pending = false;
        let network = &self.network;
        for (peer, host) in self.hosts.iter_mut() {
            if host.sketch_tasks.is_empty() || network.is_down(peer) {
                continue;
            }
            for &(sub, task) in &host.sketch_tasks {
                let Some(operator) = host.operators.get_mut(&(sub, task)) else {
                    continue;
                };
                let output = operator.sketch_flush().or_else(|| operator.sketch_answer());
                if let Some(output) = output {
                    flushed.push((sub, task, output));
                }
                pending |= operator.sketch_pending();
            }
        }
        let any = !flushed.is_empty();
        flushed.sort_by_key(|entry| (entry.0, entry.1));
        for (sub, task, output) in flushed {
            if self.subscriptions[sub].retired {
                continue;
            }
            match self.subscriptions[sub].routes[task] {
                Route::Local { task: next, port } => self.enqueue_data(sub, next, port, output),
                Route::Channel { channel } => {
                    // The multicast path counts the partial's bytes on the
                    // wire and feeds the channel's measured rate — the
                    // sublinearity the sketch bench gates rides exactly
                    // this accounting.
                    if let Some(plan) = self.multicast_plan(&channel) {
                        self.run_multicast(&plan, &Arc::new(output));
                    }
                }
                Route::Publisher => self.deliver_result(sub, Arc::new(output)),
                Route::Dropped => {}
            }
        }
        any || pending
    }

    /// One simulation round: drain alerters, process local work, flush
    /// sketch stages at the round boundary, deliver network traffic.
    /// Returns `true` when any work was done.
    pub fn tick(&mut self) -> bool {
        self.drain_alerters();
        let had_local = self.hosts.values().any(PeerHost::has_local_work);
        // With self-monitoring on, the processing phase is timed and the
        // duration recorded for the next `monStats` snapshot (bounded ring,
        // so an unconsumed buffer cannot grow without limit).
        let round_start = self.config.self_monitor.then(std::time::Instant::now);
        self.process_pending();
        if let Some(start) = round_start {
            if self.round_micros.len() >= 4096 {
                self.round_micros.pop_front();
            }
            self.round_micros
                .push_back(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        }
        let flushed = self.flush_sketches();
        let delivered = self.deliver_network();
        had_local || flushed || delivered > 0
    }

    /// Runs rounds until the system is quiescent.  With
    /// [`MonitorConfig::self_monitor`](crate::MonitorConfig::self_monitor)
    /// on, one self-metrics snapshot is emitted first, so `monStats`
    /// subscribers observe the state the monitor had accumulated before
    /// this call.
    pub fn run_until_idle(&mut self) {
        if self.config.self_monitor {
            self.emit_self_metrics();
        }
        while self.tick() {}
    }
}

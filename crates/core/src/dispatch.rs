//! Alert, item and channel routing between [`PeerHost`]s.
//!
//! This module carries the monitor's data plane: the routing tables built at
//! deployment time, the engine-gated fan-out of alerts into hosted tasks, the
//! per-peer work loops and the channel/network delivery glue.
//!
//! The hot path is [`Monitor::dispatch_document`]: when one alert document is
//! about to fan out to many hosted subscriptions on a peer, it runs **once**
//! through that peer's shared [`FilterEngine`] (preFilter → AESFilter →
//! YFilterσ) and only the matched subscriptions' operators execute.  The
//! `Select` operator keeps its LET-derivation / general-condition tail as the
//! residual check.  Setting [`crate::MonitorConfig::naive_dispatch`] disables
//! the engine and fans every alert out to every consumer, re-evaluating each
//! `Select` linearly — the pre-decomposition behaviour, kept as an
//! equivalence oracle for tests and benches.
//!
//! [`FilterEngine`]: p2pmon_filter::FilterEngine

use std::collections::HashMap;

use p2pmon_filter::FilterOutcome;
use p2pmon_streams::binding::TUPLE_TAG;
use p2pmon_streams::ChannelId;
use p2pmon_xmlkit::Element;

use crate::monitor::Monitor;
use crate::peer::Work;
use crate::placement::TaskKind;

/// A delivery target `(subscription, task, port)` together with its resolved
/// engine gate, if any: `(effective select task, engine registration)`.
type ResolvedTarget = (
    usize,
    usize,
    usize,
    Option<(usize, p2pmon_filter::SubscriptionId)>,
);

/// How a task's output is routed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Route {
    /// Same-peer edge: enqueue directly for the consumer task.
    Local { task: usize, port: usize },
    /// Cross-peer edge or published output: multicast on this channel to
    /// every registered consumer.
    Channel { channel: ChannelId },
    /// The plan root: deliver to the subscription's sink (and, when the BY
    /// clause publishes a channel, also to that channel's subscribers).
    Publisher,
}

/// The deployment-time routing tables shared by every peer.
#[derive(Default)]
pub(crate) struct RoutingTable {
    /// (function, monitored peer) → consumer source tasks.
    pub source_consumers: HashMap<(String, String), Vec<(usize, usize)>>,
    /// function → dynamic-source tasks (membership-filtered feeds).
    pub dynamic_consumers: HashMap<String, Vec<(usize, usize)>>,
    /// channel → consumer (subscription, task, port).
    pub channel_consumers: HashMap<ChannelId, Vec<(usize, usize, usize)>>,
    /// Items published on externally visible channels (BY channel clauses).
    pub published_channels: HashMap<ChannelId, Vec<Element>>,
}

/// Counters for the engine-gated dispatch path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Documents run through a peer's shared filter engine.
    pub engine_documents: u64,
    /// Gated deliveries that passed the engine (residual check still runs).
    pub gate_passes: u64,
    /// Gated deliveries skipped because the engine rejected them — work the
    /// naive path would have spent on a full `Select` evaluation.
    pub gate_rejections: u64,
    /// Deliveries that bypassed the engine (non-Select consumers, tuple
    /// items, or `naive_dispatch` mode).
    pub plain_deliveries: u64,
    /// Work items discarded because their host peer was down.
    pub dropped_by_failure: u64,
}

impl Monitor {
    /// Wraps a payload as a stream item with a fresh sequence number.
    pub(crate) fn make_item(&mut self, data: Element) -> p2pmon_streams::StreamItem {
        let item = p2pmon_streams::StreamItem::new(self.next_seq, self.network.now(), data);
        self.next_seq += 1;
        item
    }

    /// Enqueues an item for a task on whichever peer hosts it.
    pub(crate) fn enqueue(
        &mut self,
        sub: usize,
        task: usize,
        port: usize,
        item: p2pmon_streams::StreamItem,
        prefiltered: bool,
    ) {
        let peer = &self.subscriptions[sub].placed.tasks[task].peer;
        self.hosts
            .get_mut(peer)
            .expect("every placed task's host is created at deployment")
            .enqueue(Work {
                sub,
                task,
                port,
                item,
                prefiltered,
            });
    }

    /// Resolves the engine gate for one delivery target, if any: either the
    /// target itself is a hosted `Select`, or it is a pass-through source
    /// whose local downstream is one (in which case the pass-through hop is
    /// collapsed and the select becomes the effective target).
    fn resolve_gate(
        &self,
        peer: &str,
        sub: usize,
        task: usize,
        port: usize,
        doc: &Element,
    ) -> Option<(usize, p2pmon_filter::SubscriptionId)> {
        if self.config.naive_dispatch || port != 0 || doc.name == TUPLE_TAG {
            return None;
        }
        let host = self.hosts.get(peer)?;
        let placed = &self.subscriptions[sub].placed;
        match &placed.tasks[task].kind {
            TaskKind::Select { .. } => host.gate(sub, task).map(|id| (task, id)),
            // Pass-through sources: gate on (and collapse into) the Select
            // they feed on the same peer.
            TaskKind::Source { .. } | TaskKind::ChannelSource { .. } => {
                match &self.subscriptions[sub].routes[task] {
                    Route::Local {
                        task: next,
                        port: 0,
                    } if matches!(placed.tasks[*next].kind, TaskKind::Select { .. }) => {
                        host.gate(sub, *next).map(|id| (*next, id))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Fans one document out to delivery targets on `peer`, running the
    /// peer's shared filter engine at most once (per distinct document, via
    /// `memo`) and skipping subscriptions the engine rejects.
    pub(crate) fn dispatch_document_memo(
        &mut self,
        peer: &str,
        doc: &Element,
        targets: &[(usize, usize, usize)],
        memo: &mut HashMap<String, FilterOutcome>,
    ) {
        let resolved: Vec<ResolvedTarget> = targets
            .iter()
            .map(|&(sub, task, port)| {
                (
                    sub,
                    task,
                    port,
                    self.resolve_gate(peer, sub, task, port, doc),
                )
            })
            .collect();
        let outcome = if resolved.iter().any(|(_, _, _, gate)| gate.is_some()) {
            let key = doc.to_xml();
            if !memo.contains_key(&key) {
                let host = self.hosts.get_mut(peer).expect("gated peer is hosted");
                self.dispatch_stats.engine_documents += 1;
                memo.insert(key.clone(), host.engine.process(doc));
            }
            memo.get(&key).cloned()
        } else {
            None
        };
        for (sub, task, port, gate) in resolved {
            match gate {
                None => {
                    self.dispatch_stats.plain_deliveries += 1;
                    let item = self.make_item(doc.clone());
                    self.enqueue(sub, task, port, item, false);
                }
                Some((select_task, id)) => {
                    let passed = outcome
                        .as_ref()
                        .is_some_and(|o| o.matched.binary_search(&id).is_ok());
                    if passed {
                        self.dispatch_stats.gate_passes += 1;
                        let item = self.make_item(doc.clone());
                        self.enqueue(sub, select_task, 0, item, true);
                    } else {
                        self.dispatch_stats.gate_rejections += 1;
                    }
                }
            }
        }
    }

    /// One-shot [`Monitor::dispatch_document_memo`] for a single document.
    pub(crate) fn dispatch_document(
        &mut self,
        peer: &str,
        doc: &Element,
        targets: &[(usize, usize, usize)],
    ) {
        let mut memo = HashMap::new();
        self.dispatch_document_memo(peer, doc, targets, &mut memo);
    }

    /// Feeds an alert to dynamic-source tasks (membership-filtered feeds);
    /// they filter per item, so the engine does not gate them.
    pub(crate) fn feed_dynamic(
        &mut self,
        origin: &str,
        consumers: &[(usize, usize)],
        alert: Element,
    ) {
        for &(sub, task) in consumers {
            let task_peer = self.subscriptions[sub].placed.tasks[task].peer.clone();
            if task_peer != origin {
                // Account the transfer of the raw alert to the dynamic source.
                self.network.send(origin, &task_peer, None, alert.clone());
            }
            let item = self.make_item(alert.clone());
            self.enqueue(sub, task, 0, item, false);
        }
    }

    /// Drains every live peer's alerters into the deployed source tasks,
    /// engine-gating the fan-out.
    pub(crate) fn drain_alerters(&mut self) {
        let mut feeds: Vec<(String, String, Vec<Element>)> = Vec::new();
        let peers: Vec<String> = self.hosts.keys().cloned().collect();
        for peer in peers {
            if self.network.is_down(&peer) {
                continue;
            }
            let host = self.hosts.get_mut(&peer).expect("host just listed");
            for (function, alerts) in host.alerters.drain_all() {
                feeds.push((function.to_string(), peer.clone(), alerts));
            }
        }

        for (function, peer, alerts) in feeds {
            let consumers = self
                .routing
                .source_consumers
                .get(&(function.clone(), peer.clone()))
                .cloned()
                .unwrap_or_default();
            let targets: Vec<(usize, usize, usize)> = consumers
                .iter()
                .map(|&(sub, task)| (sub, task, 0))
                .collect();
            let dynamic = self
                .routing
                .dynamic_consumers
                .get(&function)
                .cloned()
                .unwrap_or_default();
            // Subscribers of the alerter's *published source stream* (other
            // subscriptions that reuse `src-<function>@peer`) receive every
            // alert over the network.
            let source_channel = ChannelId::new(peer.clone(), format!("src-{function}"));
            let source_subscribers = self
                .routing
                .channel_consumers
                .get(&source_channel)
                .cloned()
                .unwrap_or_default();
            for alert in alerts {
                self.dispatch_document(&peer, &alert, &targets);
                for (consumer_sub, consumer_task, _port) in &source_subscribers {
                    let consumer_peer = self.subscriptions[*consumer_sub].placed.tasks
                        [*consumer_task]
                        .peer
                        .clone();
                    self.network.send(
                        &peer,
                        &consumer_peer,
                        Some(source_channel.clone()),
                        alert.clone(),
                    );
                }
                // Membership alerters feed dynamic sources through the plan
                // itself (port 1), so only non-membership functions are
                // fanned out here.
                if function != "areRegistered" {
                    self.feed_dynamic(&peer.clone(), &dynamic, alert);
                }
            }
        }
    }

    /// Processes every peer's work queue until all of them are empty.  Work
    /// queued on a downed peer is discarded (the peer's processors are gone
    /// with it).
    pub(crate) fn process_pending(&mut self) {
        loop {
            let mut did_work = false;
            let peers: Vec<String> = self.hosts.keys().cloned().collect();
            for peer in peers {
                if self.network.is_down(&peer) {
                    let host = self.hosts.get_mut(&peer).expect("host just listed");
                    let dropped = host.queue.len() as u64;
                    if dropped > 0 {
                        host.queue.clear();
                        self.dispatch_stats.dropped_by_failure += dropped;
                    }
                    continue;
                }
                while let Some(work) = self
                    .hosts
                    .get_mut(&peer)
                    .expect("host just listed")
                    .queue
                    .pop_front()
                {
                    did_work = true;
                    self.execute(work);
                }
            }
            if !did_work {
                break;
            }
        }
    }

    /// Runs one work item through its operator and routes the outputs.
    fn execute(&mut self, work: Work) {
        self.operator_invocations += 1;
        let Work {
            sub,
            task,
            port,
            item,
            prefiltered,
        } = work;
        let outputs = {
            let operator = &mut self.subscriptions[sub].operators[task];
            if prefiltered {
                operator.on_item_prefiltered(port, &item).items
            } else {
                operator.on_item(port, &item).items
            }
        };
        if outputs.is_empty() {
            return;
        }
        let route = self.subscriptions[sub].routes[task].clone();
        for output in outputs {
            match &route {
                Route::Local { task, port } => {
                    let item = self.make_item(output);
                    self.enqueue(sub, *task, *port, item, false);
                }
                Route::Channel { channel } => {
                    self.emit_on_channel(channel.clone(), output);
                }
                Route::Publisher => {
                    self.deliver_result(sub, output);
                }
            }
        }
    }

    /// Multicasts a task output on its channel (one message per subscriber).
    fn emit_on_channel(&mut self, channel: ChannelId, output: Element) {
        let producer_peer = channel.peer.clone();
        let consumers = self
            .routing
            .channel_consumers
            .get(&channel)
            .cloned()
            .unwrap_or_default();
        for (consumer_sub, consumer_task, _port) in consumers {
            let consumer_peer = self.subscriptions[consumer_sub].placed.tasks[consumer_task]
                .peer
                .clone();
            self.network.send(
                &producer_peer,
                &consumer_peer,
                Some(channel.clone()),
                output.clone(),
            );
        }
    }

    /// Delivers a plan-root output to the subscription's sink and, when the
    /// BY clause publishes a channel, to that channel's subscribers.
    fn deliver_result(&mut self, sub_idx: usize, output: Element) {
        // Ship the result from the peer that produced it to the manager's
        // publisher (counted as network traffic when they differ).
        let root_peer = {
            let sub = &self.subscriptions[sub_idx];
            sub.placed.tasks[sub.placed.root].peer.clone()
        };
        let manager_peer = self.subscriptions[sub_idx].manager.clone();
        if root_peer != manager_peer {
            self.network
                .send(&root_peer, &manager_peer, None, output.clone());
        }
        self.subscriptions[sub_idx].sink.deliver(output.clone());
        if let Some(channel) = self.subscriptions[sub_idx].published_channel.clone() {
            self.routing
                .published_channels
                .entry(channel.clone())
                .or_default()
                .push(output.clone());
            // Other subscriptions (or external peers) subscribed to the
            // published channel receive the item over the network.
            let consumers = self
                .routing
                .channel_consumers
                .get(&channel)
                .cloned()
                .unwrap_or_default();
            let manager = self.subscriptions[sub_idx].manager.clone();
            for (consumer_sub, consumer_task, _port) in consumers {
                let consumer_peer = self.subscriptions[consumer_sub].placed.tasks[consumer_task]
                    .peer
                    .clone();
                self.network.send(
                    &manager,
                    &consumer_peer,
                    Some(channel.clone()),
                    output.clone(),
                );
            }
        }
    }

    /// Delivers in-flight network messages and feeds channel traffic into the
    /// consuming tasks (engine-gated, with one engine pass per distinct
    /// document per peer).  Returns the number of delivered messages.
    pub(crate) fn deliver_network(&mut self) -> usize {
        let delivered = self.network.run_until_idle();
        if delivered == 0 {
            return 0;
        }
        let peers: Vec<String> = self.peers.iter().cloned().collect();
        for peer in peers {
            // One engine pass per distinct document per peer per round, even
            // when the same alert arrives as many per-subscriber messages.
            let mut memo: HashMap<String, FilterOutcome> = HashMap::new();
            for message in self.network.take_inbox(&peer) {
                let Some(channel) = message.channel.clone() else {
                    continue;
                };
                let targets: Vec<(usize, usize, usize)> = self
                    .routing
                    .channel_consumers
                    .get(&channel)
                    .cloned()
                    .unwrap_or_default()
                    .into_iter()
                    .filter(|&(sub, task, _)| {
                        self.subscriptions[sub].placed.tasks[task].peer == peer
                    })
                    .collect();
                if targets.is_empty() {
                    continue;
                }
                self.dispatch_document_memo(&peer, &message.payload, &targets, &mut memo);
            }
        }
        delivered
    }

    /// One simulation round: drain alerters, process local work, deliver
    /// network traffic.  Returns `true` when any work was done.
    pub fn tick(&mut self) -> bool {
        self.drain_alerters();
        let had_local = self.hosts.values().any(|h| !h.queue.is_empty());
        self.process_pending();
        let delivered = self.deliver_network();
        had_local || delivered > 0
    }

    /// Runs rounds until the system is quiescent.
    pub fn run_until_idle(&mut self) {
        while self.tick() {}
    }
}

//! Alert, item and channel routing between [`PeerHost`]s.
//!
//! This module carries the monitor's data plane: the routing tables built at
//! deployment time, the engine-gated batched fan-out of alerts into hosted
//! tasks, the per-peer work loops and the channel/network delivery glue.
//!
//! Every dispatch round is a two-phase step:
//!
//! 1. **Parallel phase** — every peer with local work is handed to the
//!    work-stealing scheduler ([`crate::scheduler`], sized by
//!    [`crate::MonitorConfig::workers`]).  A worker owns the whole
//!    [`PeerHost`] shard: it drains the peer's [`PendingAlert`] batch —
//!    deduplicating identical documents and running **one** amortized pass
//!    of the shared [`FilterEngine`] (preFilter → AESFilter → YFilterσ) per
//!    unique document ([`p2pmon_filter::FilterEngine::match_batch`]) — and
//!    then runs the work queue until empty.  Only matched subscriptions'
//!    operators execute; the `Select` operator keeps its LET-derivation /
//!    general-condition tail as the residual check.  Cross-peer outputs are
//!    buffered as [`Effect`]s; nothing touches the monitor façade.
//! 2. **Commit phase** — the buffered effects are applied in deterministic
//!    peer order: channel multicasts and publisher deliveries hit the
//!    network and the sinks exactly as the sequential path would, so results
//!    are identical for any worker count (`workers = 1` *is* the sequential
//!    path and serves as the equivalence oracle).
//!
//! Setting [`crate::MonitorConfig::naive_dispatch`] disables the engine and
//! fans every alert out to every consumer, re-evaluating each `Select`
//! linearly — the pre-decomposition behaviour, kept as a second oracle.
//!
//! [`FilterEngine`]: p2pmon_filter::FilterEngine
//! [`PendingAlert`]: crate::peer::PendingAlert

use std::collections::HashMap;
use std::sync::Arc;

use p2pmon_streams::binding::TUPLE_TAG;
use p2pmon_streams::ChannelId;
use p2pmon_xmlkit::Element;

use crate::monitor::{DeployedSubscription, Monitor};
use crate::peer::{PeerHost, PendingAlert, Work};
use crate::placement::TaskKind;
use crate::scheduler;

/// A shared list of delivery targets `(subscription, task, port)` — one
/// alert batch fans out to the same consumers, so the list is built once.
type SharedTargets = Arc<Vec<(usize, usize, usize)>>;

/// A delivery target `(subscription, task, port)` together with its resolved
/// engine gate, if any: `(effective select task, engine registration)`.
type ResolvedTarget = (
    usize,
    usize,
    usize,
    Option<(usize, p2pmon_filter::SubscriptionId)>,
);

/// How a task's output is routed.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Route {
    /// Same-peer edge: enqueue directly for the consumer task.
    Local { task: usize, port: usize },
    /// Cross-peer edge or published output: multicast on this channel to
    /// every registered consumer.
    Channel { channel: ChannelId },
    /// The plan root: deliver to the subscription's sink (and, when the BY
    /// clause publishes a channel, also to that channel's subscribers).
    Publisher,
}

/// The deployment-time routing tables shared by every peer.
#[derive(Default)]
pub(crate) struct RoutingTable {
    /// (function, monitored peer) → consumer source tasks.
    pub source_consumers: HashMap<(String, String), Vec<(usize, usize)>>,
    /// function → dynamic-source tasks (membership-filtered feeds).
    pub dynamic_consumers: HashMap<String, Vec<(usize, usize)>>,
    /// channel → consumer (subscription, task, port).
    pub channel_consumers: HashMap<ChannelId, Vec<(usize, usize, usize)>>,
    /// Items published on externally visible channels (BY channel clauses).
    pub published_channels: HashMap<ChannelId, Vec<Element>>,
}

/// Counters for the engine-gated dispatch path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Documents run through a peer's shared filter engine.
    pub engine_documents: u64,
    /// Engine passes skipped because an identical document was already
    /// filtered in the same per-peer batch (batched-dispatch dedup).
    pub batch_dedup_hits: u64,
    /// Gated deliveries that passed the engine (residual check still runs).
    pub gate_passes: u64,
    /// Gated deliveries skipped because the engine rejected them — work the
    /// naive path would have spent on a full `Select` evaluation.
    pub gate_rejections: u64,
    /// Deliveries that bypassed the engine (non-Select consumers, tuple
    /// items, or `naive_dispatch` mode).
    pub plain_deliveries: u64,
    /// Deliveries discarded because their host peer was down: queued work
    /// items plus batched alert targets.  Batched targets are counted before
    /// their engine pass runs, so gated targets the engine would have
    /// rejected are included — the counter measures deliveries the peer
    /// never got to attempt, not results lost.
    pub dropped_by_failure: u64,
}

impl DispatchStats {
    /// Accumulates another stats block (merging per-worker counters).
    pub(crate) fn absorb(&mut self, other: &DispatchStats) {
        self.engine_documents += other.engine_documents;
        self.batch_dedup_hits += other.batch_dedup_hits;
        self.gate_passes += other.gate_passes;
        self.gate_rejections += other.gate_rejections;
        self.plain_deliveries += other.plain_deliveries;
        self.dropped_by_failure += other.dropped_by_failure;
    }
}

/// The immutable, deployment-time view every scheduler worker shares during
/// a parallel phase: subscription plans and routes.  All per-task mutable
/// state (operators, engines, queues) lives in the per-peer shards, so
/// workers never contend on the monitor façade.
pub(crate) struct DispatchSnapshot<'a> {
    /// The deployed subscriptions (placements and routes only).
    pub subs: &'a [DeployedSubscription],
    /// Bypass the shared engines (naive fan-out oracle).
    pub naive_dispatch: bool,
    /// The logical clock at phase start (constant during a phase).
    pub now: u64,
}

/// A side effect a peer's local processing defers to the commit phase.
pub(crate) enum Effect {
    /// Multicast a task output on its channel.
    Channel { channel: ChannelId, output: Element },
    /// Deliver a plan-root output to the subscription's publisher.
    Result { sub: usize, output: Element },
}

/// Everything one peer's phase produced: buffered cross-peer effects plus
/// the counters to merge into the façade.
#[derive(Default)]
pub(crate) struct PeerEffects {
    /// Deferred effects, in generation order.
    pub effects: Vec<Effect>,
    /// Dispatch counters accumulated by this worker.
    pub stats: DispatchStats,
    /// Operator invocations performed by this worker.
    pub operator_invocations: u64,
}

impl DispatchSnapshot<'_> {
    /// Resolves the engine gate for one delivery target, if any: either the
    /// target itself is a hosted `Select`, or it is a pass-through source
    /// whose local downstream is one (in which case the pass-through hop is
    /// collapsed and the select becomes the effective target).
    fn resolve_gate(
        &self,
        host: &PeerHost,
        sub: usize,
        task: usize,
        port: usize,
        doc: &Element,
    ) -> Option<(usize, p2pmon_filter::SubscriptionId)> {
        if self.naive_dispatch || port != 0 || doc.name == TUPLE_TAG {
            return None;
        }
        let placed = &self.subs[sub].placed;
        match &placed.tasks[task].kind {
            TaskKind::Select { .. } => host.gate(sub, task).map(|id| (task, id)),
            // Pass-through sources: gate on (and collapse into) the Select
            // they feed on the same peer.
            TaskKind::Source { .. } | TaskKind::ChannelSource { .. } => {
                match &self.subs[sub].routes[task] {
                    Route::Local {
                        task: next,
                        port: 0,
                    } if matches!(placed.tasks[*next].kind, TaskKind::Select { .. }) => {
                        host.gate(sub, *next).map(|id| (*next, id))
                    }
                    _ => None,
                }
            }
            _ => None,
        }
    }
}

/// Runs one peer's whole local phase: the batched alert dispatch, then the
/// work queue until it is empty.  Called by scheduler workers (and inline on
/// the sequential path).
pub(crate) fn run_peer(host: &mut PeerHost, snapshot: &DispatchSnapshot<'_>) -> PeerEffects {
    let mut out = PeerEffects::default();
    drain_alert_batch(host, snapshot, &mut out);
    while let Some(work) = host.queue.pop_front() {
        execute(host, snapshot, work, &mut out);
    }
    out
}

/// Drains the peer's pending alerts as one batch: resolves every delivery
/// target's engine gate, runs one amortized engine pass per *unique* gated
/// document, and enqueues work for the matched (or ungated) targets.
fn drain_alert_batch(host: &mut PeerHost, snapshot: &DispatchSnapshot<'_>, out: &mut PeerEffects) {
    if host.pending_alerts.is_empty() {
        return;
    }
    let batch = std::mem::take(&mut host.pending_alerts);
    let resolved: Vec<Vec<ResolvedTarget>> = batch
        .iter()
        .map(|alert| {
            alert
                .targets
                .iter()
                .map(|&(sub, task, port)| {
                    (
                        sub,
                        task,
                        port,
                        snapshot.resolve_gate(host, sub, task, port, &alert.doc),
                    )
                })
                .collect()
        })
        .collect();

    // One amortized engine pass per unique document that has at least one
    // gated target in this batch.  `gated_pos[i]` maps a batch position to
    // its position in the engine's input (and thus its outcome index).
    let mut gated_pos: Vec<Option<usize>> = vec![None; batch.len()];
    let mut docs: Vec<&Element> = Vec::new();
    for (i, targets) in resolved.iter().enumerate() {
        if targets.iter().any(|(_, _, _, gate)| gate.is_some()) {
            gated_pos[i] = Some(docs.len());
            docs.push(&batch[i].doc);
        }
    }
    let batch_outcome = host.engine.match_batch(&docs);
    out.stats.engine_documents += batch_outcome.passes() as u64;
    out.stats.batch_dedup_hits += (docs.len() - batch_outcome.passes()) as u64;

    for (i, (alert, targets)) in batch.iter().zip(&resolved).enumerate() {
        let outcome = gated_pos[i].map(|pos| batch_outcome.outcome(pos));
        for &(sub, task, port, gate) in targets {
            match gate {
                None => {
                    out.stats.plain_deliveries += 1;
                    let item = host.make_item(snapshot.now, alert.doc.clone());
                    host.enqueue(Work {
                        sub,
                        task,
                        port,
                        item,
                        prefiltered: false,
                    });
                }
                Some((select_task, id)) => {
                    let passed = outcome.is_some_and(|o| o.matched.binary_search(&id).is_ok());
                    if passed {
                        out.stats.gate_passes += 1;
                        let item = host.make_item(snapshot.now, alert.doc.clone());
                        host.enqueue(Work {
                            sub,
                            task: select_task,
                            port: 0,
                            item,
                            prefiltered: true,
                        });
                    } else {
                        out.stats.gate_rejections += 1;
                    }
                }
            }
        }
    }
}

/// Runs one work item through its operator and routes the outputs: same-peer
/// edges re-enter the host's queue, everything else is buffered as an effect.
fn execute(
    host: &mut PeerHost,
    snapshot: &DispatchSnapshot<'_>,
    work: Work,
    out: &mut PeerEffects,
) {
    out.operator_invocations += 1;
    let Work {
        sub,
        task,
        port,
        item,
        prefiltered,
    } = work;
    let outputs = {
        let operator = host
            .operators
            .get_mut(&(sub, task))
            .expect("every placed task's operator lives in its host's shard");
        if prefiltered {
            operator.on_item_prefiltered(port, &item).items
        } else {
            operator.on_item(port, &item).items
        }
    };
    if outputs.is_empty() {
        return;
    }
    let route = snapshot.subs[sub].routes[task].clone();
    for output in outputs {
        match &route {
            Route::Local { task, port } => {
                let item = host.make_item(snapshot.now, output);
                host.enqueue(Work {
                    sub,
                    task: *task,
                    port: *port,
                    item,
                    prefiltered: false,
                });
            }
            Route::Channel { channel } => out.effects.push(Effect::Channel {
                channel: channel.clone(),
                output,
            }),
            Route::Publisher => out.effects.push(Effect::Result { sub, output }),
        }
    }
}

impl Monitor {
    /// Enqueues a payload for a task on whichever peer hosts it (item
    /// creation happens on that host).
    pub(crate) fn enqueue_data(&mut self, sub: usize, task: usize, port: usize, data: Element) {
        let now = self.network.now();
        let peer = &self.subscriptions[sub].placed.tasks[task].peer;
        let host = self
            .hosts
            .get_mut(peer)
            .expect("every placed task's host is created at deployment");
        let item = host.make_item(now, data);
        host.enqueue(Work {
            sub,
            task,
            port,
            item,
            prefiltered: false,
        });
    }

    /// Feeds an alert to dynamic-source tasks (membership-filtered feeds);
    /// they filter per item, so the engine does not gate them.
    pub(crate) fn feed_dynamic(
        &mut self,
        origin: &str,
        consumers: &[(usize, usize)],
        alert: Element,
    ) {
        for &(sub, task) in consumers {
            let task_peer = self.subscriptions[sub].placed.tasks[task].peer.clone();
            if task_peer != origin {
                // Account the transfer of the raw alert to the dynamic source.
                self.network.send(origin, &task_peer, None, alert.clone());
            }
            self.enqueue_data(sub, task, 0, alert.clone());
        }
    }

    /// Drains every live peer's alerters into the consuming peers' alert
    /// batches (processed — engine-gated and deduplicated — by the next
    /// dispatch phase).
    pub(crate) fn drain_alerters(&mut self) {
        let mut feeds: Vec<(String, String, Vec<Element>)> = Vec::new();
        let peers: Vec<String> = self.hosts.keys().cloned().collect();
        for peer in peers {
            if self.network.is_down(&peer) {
                continue;
            }
            let host = self.hosts.get_mut(&peer).expect("host just listed");
            for (function, alerts) in host.alerters.drain_all() {
                feeds.push((function.to_string(), peer.clone(), alerts));
            }
        }

        for (function, peer, alerts) in feeds {
            let consumers = self
                .routing
                .source_consumers
                .get(&(function.clone(), peer.clone()))
                .cloned()
                .unwrap_or_default();
            // Every alert of this feed fans out to the same consumers: build
            // the target list once and share it across the batch.
            let targets: Arc<Vec<(usize, usize, usize)>> = Arc::new(
                consumers
                    .iter()
                    .map(|&(sub, task)| (sub, task, 0))
                    .collect(),
            );
            let dynamic = self
                .routing
                .dynamic_consumers
                .get(&function)
                .cloned()
                .unwrap_or_default();
            // Subscribers of the alerter's *published source stream* (other
            // subscriptions that reuse `src-<function>@peer`) receive every
            // alert over the network.
            let source_channel = ChannelId::new(peer.clone(), format!("src-{function}"));
            let source_subscribers = self
                .routing
                .channel_consumers
                .get(&source_channel)
                .cloned()
                .unwrap_or_default();
            for alert in alerts {
                if !targets.is_empty() {
                    self.hosts
                        .get_mut(&peer)
                        .expect("alerting peer is hosted")
                        .pending_alerts
                        .push(PendingAlert {
                            doc: alert.clone(),
                            targets: Arc::clone(&targets),
                        });
                }
                for (consumer_sub, consumer_task, _port) in &source_subscribers {
                    let consumer_peer = self.subscriptions[*consumer_sub].placed.tasks
                        [*consumer_task]
                        .peer
                        .clone();
                    self.network.send(
                        &peer,
                        &consumer_peer,
                        Some(source_channel.clone()),
                        alert.clone(),
                    );
                }
                // Membership alerters feed dynamic sources through the plan
                // itself (port 1), so only non-membership functions are
                // fanned out here.
                if function != "areRegistered" {
                    self.feed_dynamic(&peer.clone(), &dynamic, alert);
                }
            }
        }
    }

    /// Runs dispatch phases until every peer's batch and queue are empty.
    /// Work queued on a downed peer is discarded (the peer's processors are
    /// gone with it).
    pub(crate) fn process_pending(&mut self) {
        loop {
            // Downed peers lose their batched alerts and queued work.
            let downed: Vec<String> = self
                .hosts
                .keys()
                .filter(|peer| self.network.is_down(peer))
                .cloned()
                .collect();
            for peer in &downed {
                let host = self.hosts.get_mut(peer).expect("host just listed");
                let dropped = host.queue.len() as u64
                    + host
                        .pending_alerts
                        .iter()
                        .map(|alert| alert.targets.len() as u64)
                        .sum::<u64>();
                if dropped > 0 {
                    host.queue.clear();
                    host.pending_alerts.clear();
                    self.dispatch_stats.dropped_by_failure += dropped;
                }
            }

            // Parallel phase: hand every peer with local work to the
            // scheduler; workers only touch their own host's shard plus the
            // immutable snapshot.
            let results = {
                let snapshot = DispatchSnapshot {
                    subs: &self.subscriptions,
                    naive_dispatch: self.config.naive_dispatch,
                    now: self.network.now(),
                };
                let jobs: Vec<&mut PeerHost> = self
                    .hosts
                    .values_mut()
                    .filter(|host| host.has_local_work())
                    .collect();
                if jobs.is_empty() {
                    break;
                }
                scheduler::run_jobs(jobs, self.config.workers, &snapshot)
            };

            // Commit phase: apply the buffered effects in deterministic peer
            // order, exactly as the sequential path would have.
            for result in results {
                self.dispatch_stats.absorb(&result.stats);
                self.operator_invocations += result.operator_invocations;
                for effect in result.effects {
                    match effect {
                        Effect::Channel { channel, output } => {
                            self.emit_on_channel(channel, output);
                        }
                        Effect::Result { sub, output } => self.deliver_result(sub, output),
                    }
                }
            }
        }
    }

    /// Multicasts a task output on its channel (one message per subscriber).
    fn emit_on_channel(&mut self, channel: ChannelId, output: Element) {
        let producer_peer = channel.peer.clone();
        let consumers = self
            .routing
            .channel_consumers
            .get(&channel)
            .cloned()
            .unwrap_or_default();
        for (consumer_sub, consumer_task, _port) in consumers {
            let consumer_peer = self.subscriptions[consumer_sub].placed.tasks[consumer_task]
                .peer
                .clone();
            self.network.send(
                &producer_peer,
                &consumer_peer,
                Some(channel.clone()),
                output.clone(),
            );
        }
    }

    /// Delivers a plan-root output to the subscription's sink and, when the
    /// BY clause publishes a channel, to that channel's subscribers.
    fn deliver_result(&mut self, sub_idx: usize, output: Element) {
        if self.subscriptions[sub_idx].retired {
            return;
        }
        // Ship the result from the peer that produced it to the manager's
        // publisher (counted as network traffic when they differ).
        let root_peer = {
            let sub = &self.subscriptions[sub_idx];
            sub.placed.tasks[sub.placed.root].peer.clone()
        };
        let manager_peer = self.subscriptions[sub_idx].manager.clone();
        if root_peer != manager_peer {
            self.network
                .send(&root_peer, &manager_peer, None, output.clone());
        }
        self.subscriptions[sub_idx].sink.deliver(output.clone());
        if let Some(channel) = self.subscriptions[sub_idx].published_channel.clone() {
            self.routing
                .published_channels
                .entry(channel.clone())
                .or_default()
                .push(output.clone());
            // Other subscriptions (or external peers) subscribed to the
            // published channel receive the item over the network.
            let consumers = self
                .routing
                .channel_consumers
                .get(&channel)
                .cloned()
                .unwrap_or_default();
            let manager = self.subscriptions[sub_idx].manager.clone();
            for (consumer_sub, consumer_task, _port) in consumers {
                let consumer_peer = self.subscriptions[consumer_sub].placed.tasks[consumer_task]
                    .peer
                    .clone();
                self.network.send(
                    &manager,
                    &consumer_peer,
                    Some(channel.clone()),
                    output.clone(),
                );
            }
        }
    }

    /// Delivers in-flight network messages and batches channel traffic into
    /// the consuming peers' alert inboxes (engine-gated and deduplicated by
    /// the next dispatch phase).  Returns the number of delivered messages.
    pub(crate) fn deliver_network(&mut self) -> usize {
        let delivered = self.network.run_until_idle();
        if delivered == 0 {
            return 0;
        }
        let peers: Vec<String> = self.peers.iter().cloned().collect();
        for peer in peers {
            // Per-channel targets are the same for every message of a round:
            // compute once and share the list across the batch.
            let mut channel_targets: HashMap<ChannelId, SharedTargets> = HashMap::new();
            for message in self.network.take_inbox(&peer) {
                let Some(channel) = message.channel.clone() else {
                    continue;
                };
                let targets = channel_targets
                    .entry(channel.clone())
                    .or_insert_with(|| {
                        Arc::new(
                            self.routing
                                .channel_consumers
                                .get(&channel)
                                .cloned()
                                .unwrap_or_default()
                                .into_iter()
                                .filter(|&(sub, task, _)| {
                                    self.subscriptions[sub].placed.tasks[task].peer == peer
                                })
                                .collect(),
                        )
                    })
                    .clone();
                if targets.is_empty() {
                    continue;
                }
                self.hosts
                    .get_mut(&peer)
                    .expect("inbox peer is hosted")
                    .pending_alerts
                    .push(PendingAlert {
                        doc: message.payload,
                        targets,
                    });
            }
        }
        delivered
    }

    /// One simulation round: drain alerters, process local work, deliver
    /// network traffic.  Returns `true` when any work was done.
    pub fn tick(&mut self) -> bool {
        self.drain_alerters();
        let had_local = self.hosts.values().any(PeerHost::has_local_work);
        self.process_pending();
        let delivered = self.deliver_network();
        had_local || delivered > 0
    }

    /// Runs rounds until the system is quiescent.
    pub fn run_until_idle(&mut self) {
        while self.tick() {}
    }
}

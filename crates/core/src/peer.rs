//! The per-peer runtime: one [`PeerHost`] per participating peer.
//!
//! The paper's Figure 2 peer hosts alerters, stream processors and a *shared*
//! two-stage filtering processor (preFilter → AESFilter → YFilterσ, Figure 5)
//! through which every alert entering the peer flows once, no matter how many
//! hosted subscriptions want it.  `PeerHost` reproduces that decomposition:
//!
//! * the peer's **alerters** (one per alerter function, `AlerterSet`),
//! * the peer's **shared [`FilterEngine`]**, holding the simple conditions
//!   and tree patterns of every `Select` task deployed on this peer,
//! * the peer's **operator instances** (one [`RuntimeOperator`] per task
//!   hosted here — the peer's *mutable shard*, touched by no other peer),
//! * the peer's **alert batch** (`PendingAlert`s awaiting the next
//!   amortized engine pass) and its **work queue** of pending `Work` items.
//!
//! Because a host owns every piece of mutable state its tasks need, whole
//! hosts can be handed to scheduler workers (`crate::scheduler`) and
//! processed in parallel without any contention on the [`crate::Monitor`]
//! façade; the façade only keeps the immutable routing snapshot and commits
//! the buffered cross-peer effects afterwards ([`crate::dispatch`]).

use std::collections::{HashMap, VecDeque};

use p2pmon_alerters::{
    Alerter, AxmlAlerter, CallDirection, MembershipAlerter, RssAlerter, WebPageAlerter, WsAlerter,
};
use p2pmon_filter::{EngineMode, FilterEngine, FilterStats, FilterSubscription, SubscriptionId};
use p2pmon_streams::StreamItem;
use p2pmon_xmlkit::Element;

use crate::runtime::RuntimeOperator;

/// One unit of pending work: an item addressed to a hosted task.
#[derive(Debug, Clone)]
pub(crate) struct Work {
    /// Subscription index.
    pub sub: usize,
    /// Task id within the subscription's placed plan.
    pub task: usize,
    /// Input port of the task.
    pub port: usize,
    /// The item to deliver.
    pub item: StreamItem,
    /// True when the peer's shared engine already verified the simple
    /// conditions and tree patterns of the (Select) task this work is
    /// addressed to — the operator then only runs its residual check
    /// (LET derivations + general conditions).
    pub prefiltered: bool,
}

/// One alert awaiting the peer's next batched dispatch pass, together with
/// its delivery targets `(subscription, task, port)` — all of them tasks
/// hosted on this peer.  The target list is shared (`Arc`) because every
/// alert of a drain fans out to the same consumers.
#[derive(Debug, Clone)]
pub(crate) struct PendingAlert {
    /// The alert document (shared with every other consumer of the alert).
    pub doc: std::sync::Arc<Element>,
    /// Delivery targets on this peer.
    pub targets: std::sync::Arc<Vec<(usize, usize, usize)>>,
}

/// The alerters installed on one peer, at most one per function (plus one per
/// direction for Web-service calls).
#[derive(Default)]
pub(crate) struct AlerterSet {
    pub ws_in: Option<WsAlerter>,
    pub ws_out: Option<WsAlerter>,
    pub rss: Option<RssAlerter>,
    pub page: Option<WebPageAlerter>,
    pub axml: Option<AxmlAlerter>,
    pub membership: Option<MembershipAlerter>,
    /// The self-monitoring feed (`monStats`): a plain buffer the monitor
    /// façade fills with `<metric/>` snapshots of its own runtime counters
    /// ([`crate::Monitor::emit_self_metrics`]); drained like any other
    /// alerter, so aggregate subscriptions ride the normal dispatch path.
    pub mon_stats: Option<Vec<Element>>,
}

impl AlerterSet {
    /// Installs the alerter for `function` (idempotent).
    pub fn ensure(&mut self, function: &str, peer: &str) {
        match function {
            "inCOM" => {
                self.ws_in
                    .get_or_insert_with(|| WsAlerter::new(peer, CallDirection::Incoming));
            }
            "outCOM" => {
                self.ws_out
                    .get_or_insert_with(|| WsAlerter::new(peer, CallDirection::Outgoing));
            }
            "rssFeed" => {
                self.rss.get_or_insert_with(|| RssAlerter::new(peer));
            }
            "webPage" => {
                self.page
                    .get_or_insert_with(|| WebPageAlerter::new(peer, true));
            }
            "axmlUpdate" => {
                self.axml.get_or_insert_with(|| AxmlAlerter::new(peer));
            }
            "areRegistered" => {
                self.membership
                    .get_or_insert_with(|| MembershipAlerter::new(peer));
            }
            "monStats" => {
                self.mon_stats.get_or_insert_with(Vec::new);
            }
            _ => {}
        }
    }

    /// Drains every installed alerter, returning `(function, alerts)` pairs
    /// in a fixed function order.
    pub fn drain_all(&mut self) -> Vec<(&'static str, Vec<Element>)> {
        let mut out = Vec::new();
        let mut take = |function: &'static str, alerts: Vec<Element>| {
            if !alerts.is_empty() {
                out.push((function, alerts));
            }
        };
        if let Some(a) = &mut self.ws_in {
            take("inCOM", a.drain());
        }
        if let Some(a) = &mut self.ws_out {
            take("outCOM", a.drain());
        }
        if let Some(a) = &mut self.rss {
            take("rssFeed", a.drain());
        }
        if let Some(a) = &mut self.page {
            take("webPage", a.drain());
        }
        if let Some(a) = &mut self.axml {
            take("axmlUpdate", a.drain());
        }
        if let Some(a) = &mut self.membership {
            take("areRegistered", a.drain());
        }
        if let Some(buffer) = &mut self.mon_stats {
            take("monStats", std::mem::take(buffer));
        }
        out
    }
}

/// A monitoring peer: its alerters, its shared filtering processor and its
/// work queue.
pub struct PeerHost {
    /// The peer's name (normalized).
    name: String,
    /// The shared two-stage filtering processor for every `Select` task
    /// hosted on this peer.
    pub(crate) engine: FilterEngine,
    /// `(subscription, task)` of a hosted Select → its engine registration.
    gates: HashMap<(usize, usize), SubscriptionId>,
    /// The operator instance of every task hosted here, keyed by
    /// `(subscription, task)` — the peer's mutable shard.
    pub(crate) operators: HashMap<(usize, usize), RuntimeOperator>,
    /// The hosted tasks that are sketch stages, in deterministic order —
    /// the round-boundary flush pass walks only these, so peers without
    /// aggregates pay nothing per round.
    pub(crate) sketch_tasks: std::collections::BTreeSet<(usize, usize)>,
    /// Alerts awaiting the next batched dispatch pass.
    pub(crate) pending_alerts: Vec<PendingAlert>,
    /// Pending work for tasks hosted on this peer.
    pub(crate) queue: VecDeque<Work>,
    /// The alerters installed on this peer.
    pub(crate) alerters: AlerterSet,
    /// Sequence numbers for items created on this peer.  Per-host counters
    /// keep item creation contention-free under the parallel scheduler while
    /// staying monotonic (and therefore deterministic) per peer.
    next_seq: u64,
    /// Deep-copy every item at creation instead of sharing its `Arc` — the
    /// zero-copy equivalence oracle: with fully isolated trees no operator
    /// can observe another consumer's rewrite, so any divergence from the
    /// shared-`Arc` default is an aliasing bug.
    pub(crate) deep_clone_items: bool,
}

impl PeerHost {
    /// Creates an empty host for `name`.  `adaptive` selects the
    /// cost-adaptive engine (naive start, promotion past break-even) over the
    /// always-staged one; most peers host few subscriptions, so the adaptive
    /// engine is the [`MonitorConfig`](crate::MonitorConfig) default.
    pub(crate) fn new(name: impl Into<String>, adaptive: bool) -> Self {
        PeerHost {
            name: name.into(),
            engine: if adaptive {
                FilterEngine::adaptive()
            } else {
                FilterEngine::new()
            },
            gates: HashMap::new(),
            operators: HashMap::new(),
            sketch_tasks: std::collections::BTreeSet::new(),
            pending_alerts: Vec::new(),
            queue: VecDeque::new(),
            alerters: AlerterSet::default(),
            next_seq: 0,
            deep_clone_items: false,
        }
    }

    /// The peer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of tasks deployed on this peer.
    pub fn hosted_tasks(&self) -> usize {
        self.operators.len()
    }

    /// Number of `Select` tasks registered with the shared engine.
    pub fn registered_selects(&self) -> usize {
        self.gates.len()
    }

    /// Alerts parked in the batch awaiting the next dispatch phase.
    pub fn pending_alert_count(&self) -> usize {
        self.pending_alerts.len()
    }

    /// Work items queued for tasks hosted on this peer.
    pub fn queued_work(&self) -> usize {
        self.queue.len()
    }

    /// The shared engine's statistics.
    pub fn filter_stats(&self) -> FilterStats {
        self.engine.stats
    }

    /// The strategy the shared engine is currently using (always `Staged`
    /// for a non-adaptive engine).
    pub fn filter_mode(&self) -> EngineMode {
        self.engine.mode()
    }

    /// Installs the operator instance of a task deployed here.
    pub(crate) fn install_task(&mut self, sub: usize, task: usize, operator: RuntimeOperator) {
        if operator.is_sketch() {
            self.sketch_tasks.insert((sub, task));
        }
        self.operators.insert((sub, task), operator);
    }

    /// Removes a task's operator instance (teardown path); returns `true`
    /// when it was hosted here.
    pub(crate) fn remove_task(&mut self, sub: usize, task: usize) -> bool {
        self.sketch_tasks.remove(&(sub, task));
        self.operators.remove(&(sub, task)).is_some()
    }

    /// Bytes of operator state held for one subscription's tasks.
    pub(crate) fn state_bytes_of(&self, sub: usize) -> usize {
        self.operators
            .iter()
            .filter(|((s, _), _)| *s == sub)
            .map(|(_, operator)| operator.state_size())
            .sum()
    }

    /// Registers a hosted Select task's simple conditions and tree patterns
    /// with the shared engine (the *offline adjustment* of Figure 5,
    /// performed at deployment time).
    pub(crate) fn register_select(&mut self, sub: usize, task: usize, filter: FilterSubscription) {
        self.gates.insert((sub, task), filter.id);
        self.engine.add(filter);
    }

    /// Unregisters a Select task (teardown path).
    pub(crate) fn unregister_select(&mut self, sub: usize, task: usize) -> bool {
        match self.gates.remove(&(sub, task)) {
            Some(id) => self.engine.remove(id),
            None => false,
        }
    }

    /// The engine registration gating a hosted Select task, if any.
    pub(crate) fn gate(&self, sub: usize, task: usize) -> Option<SubscriptionId> {
        self.gates.get(&(sub, task)).copied()
    }

    /// Wraps a payload as a stream item with this peer's next sequence
    /// number.
    pub(crate) fn make_item(
        &mut self,
        now: u64,
        data: impl Into<std::sync::Arc<Element>>,
    ) -> StreamItem {
        let data = data.into();
        let data = if self.deep_clone_items {
            std::sync::Arc::new((*data).clone())
        } else {
            data
        };
        let item = StreamItem::new(self.next_seq, now, data);
        self.next_seq += 1;
        item
    }

    /// Enqueues work for a hosted task.
    pub(crate) fn enqueue(&mut self, work: Work) {
        self.queue.push_back(work);
    }

    /// True when the peer has batched alerts or queued work to process.
    pub(crate) fn has_local_work(&self) -> bool {
        !self.queue.is_empty() || !self.pending_alerts.is_empty()
    }

    /// Discards every batched alert target and queued work item addressed to
    /// a subscription's removed tasks (unsubscribe / shared-teardown path).
    /// Tasks in `keep` — the producing subtrees of streams that still have
    /// subscribers — keep their queued work.
    pub(crate) fn purge_subscription_tasks(
        &mut self,
        sub: usize,
        keep: &std::collections::BTreeSet<usize>,
    ) {
        let removed = |s: usize, t: usize| s == sub && !keep.contains(&t);
        self.queue.retain(|work| !removed(work.sub, work.task));
        for alert in &mut self.pending_alerts {
            if alert.targets.iter().any(|&(s, t, _)| removed(s, t)) {
                std::sync::Arc::make_mut(&mut alert.targets).retain(|&(s, t, _)| !removed(s, t));
            }
        }
        self.pending_alerts
            .retain(|alert| !alert.targets.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_streams::AttrCondition;
    use p2pmon_xmlkit::parse;
    use p2pmon_xmlkit::path::CompareOp;

    #[test]
    fn alerter_set_installs_once_and_drains_in_fixed_order() {
        let mut set = AlerterSet::default();
        set.ensure("outCOM", "a.com");
        set.ensure("outCOM", "a.com");
        set.ensure("rssFeed", "a.com");
        assert!(set.ws_out.is_some());
        assert!(set.ws_in.is_none());
        let call = p2pmon_alerters::SoapCall::new(1, "a.com", "b.com", "Get", 10, 15);
        set.ws_out.as_mut().unwrap().observe(&call);
        let drained = set.drain_all();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, "outCOM");
        assert_eq!(drained[0].1.len(), 1);
        assert!(set.drain_all().is_empty(), "drained alerts do not reappear");
    }

    #[test]
    fn select_registration_gates_through_the_shared_engine() {
        let mut host = PeerHost::new("hub.net", true);
        let filter = FilterSubscription::new(7).with_simple(vec![AttrCondition::new(
            "callMethod",
            CompareOp::Eq,
            "Get",
        )]);
        host.register_select(3, 2, filter);
        assert_eq!(host.gate(3, 2), Some(SubscriptionId(7)));
        assert_eq!(host.gate(3, 1), None);
        assert_eq!(host.registered_selects(), 1);
        let hit = parse(r#"<alert callMethod="Get"/>"#).unwrap();
        let miss = parse(r#"<alert callMethod="Put"/>"#).unwrap();
        assert!(host
            .engine
            .process(&hit)
            .matched
            .contains(&SubscriptionId(7)));
        assert!(host.engine.process(&miss).matched.is_empty());
        assert_eq!(host.filter_stats().documents, 2);
        assert!(host.unregister_select(3, 2));
        assert!(!host.unregister_select(3, 2));
        assert_eq!(host.registered_selects(), 0);
    }
}

//! ChannelSource co-placement: a task subscribing to an existing stream is
//! movable, so it runs on its consumer's peer instead of being parked on the
//! manager — the reused stream travels producer→consumer directly, one
//! network hop fewer per alert (verified through `NetworkStats::per_peer`).

use p2pmon_alerters::SoapCall;
use p2pmon_core::{place, Monitor, MonitorConfig, PlacementStrategy, TaskKind};
use p2pmon_p2pml::plan::{LogicalNode, LogicalPlan};
use p2pmon_p2pml::ByClause;
use p2pmon_streams::Template;

/// ∪(channel src-outCOM@hub.net, σ(inCOM@backend.net)) → Π, managed at
/// manager.org: the union is anchored at backend.net (the only non-movable
/// input), and the channel source must follow it there.
fn consumer_plan() -> LogicalPlan {
    LogicalPlan {
        root: LogicalNode::Restructure {
            input: Box::new(LogicalNode::Union {
                var: "u".into(),
                inputs: vec![
                    LogicalNode::ChannelIn {
                        peer: "hub.net".into(),
                        stream: "src-outCOM".into(),
                        var: "c".into(),
                    },
                    LogicalNode::Select {
                        var: "d".into(),
                        input: Box::new(LogicalNode::Alerter {
                            function: "inCOM".into(),
                            peer: "backend.net".into(),
                            var: "d".into(),
                        }),
                        simple: vec![],
                        patterns: vec![],
                        derived: vec![],
                        conditions: vec![],
                    },
                ],
            }),
            template: Template::parse("<seen/>").expect("template parses"),
            derived: vec![],
        },
        by: ByClause::Email("ops@example.org".into()),
        distinct: false,
    }
}

#[test]
fn channel_sources_are_placed_on_their_consumers_peer() {
    let placed = place(
        &consumer_plan(),
        "manager.org",
        PlacementStrategy::PushToSources,
    );
    let channel_source = placed
        .tasks
        .iter()
        .find(|t| matches!(t.kind, TaskKind::ChannelSource { .. }))
        .expect("channel source exists");
    let union = placed
        .tasks
        .iter()
        .find(|t| matches!(t.kind, TaskKind::Union { .. }))
        .expect("union exists");
    assert_eq!(
        union.peer, "backend.net",
        "the union anchors on its only non-movable input"
    );
    assert_eq!(
        channel_source.peer, union.peer,
        "the channel source is co-placed with its consumer"
    );
    assert_ne!(channel_source.peer, "manager.org");
}

#[test]
fn co_placement_cuts_the_manager_hop_per_alert() {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_reuse: false,
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "hub.net", "backend.net"] {
        monitor.add_peer(peer);
    }
    // A producer subscription installs the outCOM alerter at hub.net and
    // publishes the src-outCOM stream; its own filter never matches, so it
    // contributes no traffic of its own.
    let producer = monitor
        .submit(
            "manager.org",
            r#"for $c in outCOM(<p>hub.net</p>)
               where $c.callMethod = "NeverCalled"
               return <never/>
               by email "producer@example.org";"#,
        )
        .expect("producer deploys");
    let consumer = monitor.deploy_plan("manager.org", consumer_plan());

    const CALLS: usize = 10;
    for i in 0..CALLS as u64 {
        monitor.inject_soap_call(&SoapCall::new(
            i,
            "http://hub.net",
            "http://backend.net",
            "Work",
            1_000 + i,
            1_005 + i,
        ));
    }
    monitor.run_until_idle();

    assert!(monitor.results(&producer).is_empty());
    assert_eq!(
        monitor.results(&consumer).len(),
        2 * CALLS,
        "every call is seen once from each side of the union"
    );

    // The reused stream flows hub.net → backend.net directly; the manager
    // receives only the (restructured) results from backend.net.
    let stats = monitor.network_stats();
    assert_eq!(
        stats.link("hub.net", "manager.org").messages,
        0,
        "no alert transits the manager"
    );
    assert_eq!(stats.link("hub.net", "backend.net").messages, CALLS as u64);
    let per_peer = stats.per_peer();
    let manager = per_peer[&"manager.org".into()];
    let backend = per_peer[&"backend.net".into()];
    assert_eq!(
        manager.messages_in,
        2 * CALLS as u64,
        "the manager receives one result per delivered incident, nothing else"
    );
    assert_eq!(manager.messages_out, 0, "the manager forwards nothing");
    assert!(
        backend.messages_in >= CALLS as u64,
        "the consumer peer ingests the reused stream directly"
    );
}

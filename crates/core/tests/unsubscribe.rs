//! `Monitor::unsubscribe`: end-to-end subscription teardown — engine
//! registrations, operator instances, routes, stream definitions and reuse
//! references all go; everything else keeps running.

use p2pmon_core::{Monitor, MonitorConfig, SubscriptionHandle};
use p2pmon_p2pml::METEO_SUBSCRIPTION;
use p2pmon_workloads::{SoapWorkload, SubscriptionStorm};

fn storm_monitor(n: usize) -> (Monitor, Vec<SubscriptionHandle>) {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_reuse: false,
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "hub.net", "backend.net"] {
        monitor.add_peer(peer);
    }
    let storm = SubscriptionStorm::new(1);
    let handles = storm
        .subscriptions(n)
        .iter()
        .map(|text| monitor.submit("manager.org", text).expect("storm deploys"))
        .collect();
    (monitor, handles)
}

#[test]
fn unsubscribe_stops_deliveries_and_unregisters_from_the_shared_engine() {
    const SUBS: usize = 8;
    let (mut monitor, handles) = storm_monitor(SUBS);
    let hub = monitor.peer_host("hub.net").expect("hub is registered");
    assert_eq!(hub.registered_selects(), SUBS);
    let hosted_before = hub.hosted_tasks();

    for call in SubscriptionStorm::new(5).calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    let before: Vec<usize> = handles.iter().map(|h| monitor.results(h).len()).collect();
    assert!(before.iter().sum::<usize>() > 0, "storm traffic matches");

    let victim = &handles[3];
    assert!(monitor.is_active(victim));
    assert!(monitor.unsubscribe(victim));
    assert!(!monitor.is_active(victim));
    assert!(!monitor.unsubscribe(victim), "second teardown is a no-op");

    let hub = monitor.peer_host("hub.net").expect("hub is registered");
    assert_eq!(
        hub.registered_selects(),
        SUBS - 1,
        "the victim's Select left the shared engine"
    );
    assert!(
        hub.hosted_tasks() < hosted_before,
        "the victim's operator instances left the host shard"
    );

    // Fresh traffic: everyone else keeps delivering, the victim is frozen.
    for call in SubscriptionStorm::new(6).calls(80) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    for (i, handle) in handles.iter().enumerate() {
        let now = monitor.results(handle).len();
        if i == 3 {
            assert_eq!(now, before[3], "unsubscribed sink must not grow");
        } else {
            assert!(now >= before[i], "live subscription {i} regressed");
        }
    }
    let grew = handles
        .iter()
        .enumerate()
        .filter(|(i, h)| *i != 3 && monitor.results(h).len() > before[*i])
        .count();
    assert!(grew > 0, "live subscriptions keep delivering");
}

#[test]
fn unsubscribing_every_subscription_retracts_all_stream_definitions() {
    const SUBS: usize = 4;
    let (mut monitor, handles) = storm_monitor(SUBS);
    assert!(
        !monitor.stream_db_mut().is_empty(),
        "deployment published definitions"
    );
    for handle in &handles {
        assert!(monitor.unsubscribe(handle));
    }
    assert!(
        monitor.stream_db_mut().is_empty(),
        "the shared src-outCOM definition goes with its last referencing \
         subscription"
    );
    let hub = monitor.peer_host("hub.net").expect("hub is registered");
    assert_eq!(hub.registered_selects(), 0);
    assert_eq!(hub.hosted_tasks(), 0);
    // The monitor stays usable: fresh traffic is simply unobserved.
    for call in SubscriptionStorm::new(7).calls(10) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
}

#[test]
fn retracted_definitions_are_no_longer_reusable() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    for peer in ["p", "observer.org", "a.com", "b.com", "meteo.com"] {
        monitor.add_peer(peer);
    }
    let first = monitor.submit("p", METEO_SUBSCRIPTION).unwrap();
    let second = monitor.submit("observer.org", METEO_SUBSCRIPTION).unwrap();
    assert!(
        monitor.report(&second).unwrap().reuse.reused_nodes > 0,
        "the second deployment reuses the first's streams"
    );

    // Tearing the *consumer* down leaves the producer fully functional.
    assert!(monitor.unsubscribe(&second));
    let mut workload = SoapWorkload::meteo(3);
    for call in workload.calls(100) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert!(!monitor.results(&first).is_empty());
    assert!(monitor.results(&second).is_empty());

    // Tearing the producer down retracts its definitions: a newcomer finds
    // nothing to reuse and rebuilds from scratch.
    assert!(monitor.unsubscribe(&first));
    assert!(monitor.stream_db_mut().is_empty());
    let third = monitor.submit("observer.org", METEO_SUBSCRIPTION).unwrap();
    let report = monitor.report(&third).unwrap();
    assert_eq!(
        report.reuse.reused_nodes, 0,
        "retracted streams must not be rediscovered"
    );
    for call in workload.calls(100) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert!(
        !monitor.results(&third).is_empty(),
        "the fresh deployment monitors on its own"
    );
}

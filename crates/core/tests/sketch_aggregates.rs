//! End-to-end streaming-sketch aggregation: `topk` / `entropy` / `quantile`
//! subscriptions compile to a sketch merge tree (leaf stages on the
//! monitored peers, interior merges, one root at the manager) and answer
//! through the normal delivery path with bounded-size partials on the wire.

use p2pmon_alerters::SoapCall;
use p2pmon_core::{Monitor, MonitorConfig};
use p2pmon_xmlkit::Element;

fn monitor_over(peers: &[&str]) -> Monitor {
    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor.add_peer("hub");
    for peer in peers {
        monitor.add_peer(*peer);
    }
    monitor
}

fn call(id: u64, callee: &str, method: &str, duration: u64) -> SoapCall {
    SoapCall::new(id, "client.org", callee, method, 1_000, 1_000 + duration)
}

/// The last (cumulative) answer delivered to a subscription's sink.
fn last_answer(monitor: &Monitor, handle: &p2pmon_core::SubscriptionHandle) -> Element {
    let results = monitor.results(handle);
    assert!(!results.is_empty(), "aggregate produced no answers");
    results.last().unwrap().clone()
}

#[test]
fn topk_aggregate_counts_methods_across_peers() {
    let mut monitor = monitor_over(&["a.com", "b.com", "c.com"]);
    let handle = monitor
        .submit(
            "hub",
            r#"for $c in inCOM(<p>a.com</p> <p>b.com</p> <p>c.com</p>)
               return topk($c.callMethod, 2)
               by email "ops@example.org";"#,
        )
        .unwrap();
    // 6 Get, 3 Put, 1 Scan spread over the three monitored peers.
    let peers = ["a.com", "b.com", "c.com"];
    for i in 0..6u64 {
        monitor.inject_soap_call(&call(i, peers[i as usize % 3], "Get", 5));
    }
    for i in 6..9u64 {
        monitor.inject_soap_call(&call(i, peers[i as usize % 3], "Put", 5));
    }
    monitor.inject_soap_call(&call(9, "a.com", "Scan", 5));
    monitor.run_until_idle();

    let answer = last_answer(&monitor, &handle);
    assert_eq!(answer.name, "aggregate");
    assert_eq!(answer.attr("kind"), Some("topk"));
    assert_eq!(answer.attr("total"), Some("10"));
    let entries: Vec<&Element> = answer.children_named("entry").collect();
    assert_eq!(entries.len(), 2, "topk(…, 2) answers exactly two entries");
    assert_eq!(entries[0].attr("key"), Some("Get"));
    assert_eq!(entries[0].attr("count"), Some("6"));
    assert_eq!(entries[1].attr("key"), Some("Put"));
    assert_eq!(entries[1].attr("count"), Some("3"));
}

#[test]
fn where_clause_filters_before_the_sketch_leaves() {
    let mut monitor = monitor_over(&["a.com", "b.com"]);
    let handle = monitor
        .submit(
            "hub",
            r#"for $c in inCOM(<p>a.com</p> <p>b.com</p>)
               where $c.callMethod = "Get"
               return topk($c.caller, 3)
               by email "ops@example.org";"#,
        )
        .unwrap();
    for i in 0..4u64 {
        monitor.inject_soap_call(&SoapCall::new(i, "x.org", "a.com", "Get", 10, 12));
    }
    for i in 4..9u64 {
        // Filtered out: wrong method, must never reach the sketch.
        monitor.inject_soap_call(&SoapCall::new(i, "y.org", "b.com", "Put", 10, 12));
    }
    monitor.run_until_idle();
    let answer = last_answer(&monitor, &handle);
    assert_eq!(answer.attr("total"), Some("4"));
    let entries: Vec<&Element> = answer.children_named("entry").collect();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].attr("key"), Some("x.org"));
}

#[test]
fn quantile_aggregate_answers_within_relative_accuracy() {
    let mut monitor = monitor_over(&["a.com", "b.com"]);
    let handle = monitor
        .submit(
            "hub",
            r#"for $c in inCOM(<p>a.com</p> <p>b.com</p>)
               return quantile($c.duration, 0.5)
               by email "ops@example.org";"#,
        )
        .unwrap();
    // Durations 1..=100 over two peers: the exact median is 50.
    for i in 1..=100u64 {
        let callee = if i % 2 == 0 { "a.com" } else { "b.com" };
        monitor.inject_soap_call(&call(i, callee, "Get", i));
    }
    monitor.run_until_idle();
    let answer = last_answer(&monitor, &handle);
    assert_eq!(answer.attr("kind"), Some("quantile"));
    assert_eq!(answer.attr("q"), Some("500"));
    let value: f64 = answer.attr("value").unwrap().parse().unwrap();
    assert!(
        (value - 50.0).abs() / 50.0 < 0.05,
        "p50 of 1..=100 must be within 5% of 50, got {value}"
    );
}

#[test]
fn entropy_aggregate_measures_key_skew() {
    let mut monitor = monitor_over(&["a.com", "b.com"]);
    let uniform = r#"for $c in inCOM(<p>a.com</p> <p>b.com</p>)
                     return entropy($c.callMethod)
                     by email "ops@example.org";"#;
    let handle = monitor.submit("hub", uniform).unwrap();
    // Four equally likely methods: entropy is exactly 2 bits.
    for (i, method) in ["Get", "Put", "Scan", "List"]
        .iter()
        .cycle()
        .take(40)
        .enumerate()
    {
        let callee = if i % 2 == 0 { "a.com" } else { "b.com" };
        monitor.inject_soap_call(&call(i as u64, callee, method, 5));
    }
    monitor.run_until_idle();
    let answer = last_answer(&monitor, &handle);
    assert_eq!(answer.attr("kind"), Some("entropy"));
    let bits: f64 = answer.attr("bits").unwrap().parse().unwrap();
    assert!(
        (bits - 2.0).abs() < 1e-9,
        "four uniform keys carry exactly 2 bits, got {bits}"
    );
}

#[test]
fn merge_tree_handles_more_branches_than_the_fanin() {
    // 40 monitored peers > SKETCH_MERGE_FANIN (16): the planner inserts an
    // interior merge level, and the answer still counts every event.
    let peers: Vec<String> = (0..40).map(|i| format!("peer{i}.net")).collect();
    let mut monitor = monitor_over(&peers.iter().map(String::as_str).collect::<Vec<_>>());
    let source_list = peers
        .iter()
        .map(|p| format!("<p>{p}</p>"))
        .collect::<Vec<_>>()
        .join(" ");
    let text = format!(
        r#"for $c in inCOM({source_list})
           return topk($c.callMethod, 1)
           by email "ops@example.org";"#
    );
    let handle = monitor.submit("hub", &text).unwrap();
    let report = monitor.report(&handle).unwrap();
    assert!(
        report.tasks > 40 + 1 + 1,
        "40 sources + 40 leaves + interior merges + root, got {} tasks",
        report.tasks
    );
    for (i, peer) in peers.iter().enumerate() {
        monitor.inject_soap_call(&call(i as u64, peer, "Get", 5));
    }
    monitor.run_until_idle();
    let answer = last_answer(&monitor, &handle);
    assert_eq!(answer.attr("total"), Some("40"));
    let top = answer.children_named("entry").next().unwrap();
    assert_eq!(top.attr("key"), Some("Get"));
    assert_eq!(top.attr("count"), Some("40"));
}

#[test]
fn partials_on_the_wire_stay_bounded_as_events_grow() {
    // The sketch plane's point: wire bytes scale with rounds × tree edges,
    // not with the number of observed events.  Ten times the events in the
    // same number of rounds must not move ten times the bytes.
    let bytes_for = |events_per_round: u64| -> u64 {
        let mut monitor = monitor_over(&["a.com", "b.com"]);
        monitor
            .submit(
                "hub",
                r#"for $c in inCOM(<p>a.com</p> <p>b.com</p>)
                   return topk($c.callMethod, 2)
                   by email "ops@example.org";"#,
            )
            .unwrap();
        for round in 0..3u64 {
            for i in 0..events_per_round {
                let callee = if i % 2 == 0 { "a.com" } else { "b.com" };
                monitor.inject_soap_call(&call(round * 1_000 + i, callee, "Get", 5));
            }
            monitor.run_until_idle();
        }
        monitor.network_stats().total_bytes
    };
    let small = bytes_for(10);
    let large = bytes_for(100);
    assert!(
        large < small * 2,
        "10x the events must not even double the wire bytes: {small} -> {large}"
    );
}

#[test]
fn every_cadence_batches_emissions_and_stamps_sequence_numbers() {
    let mut monitor = monitor_over(&["a.com"]);
    let handle = monitor
        .submit(
            "hub",
            r#"for $c in inCOM(<p>a.com</p>)
               return topk($c.callMethod, 1) every 3
               by email "ops@example.org";"#,
        )
        .unwrap();
    monitor.inject_soap_call(&call(1, "a.com", "Get", 5));
    monitor.run_until_idle();
    let results = monitor.results(&handle);
    assert_eq!(
        results.len(),
        1,
        "run_until_idle ticks through the cadence to exactly one emission"
    );
    assert_eq!(results[0].attr("seq"), Some("1"));
    monitor.inject_soap_call(&call(2, "a.com", "Get", 5));
    monitor.run_until_idle();
    let results = monitor.results(&handle);
    assert_eq!(results.len(), 2);
    assert_eq!(results[1].attr("seq"), Some("2"));
    assert_eq!(
        results[1].attr("total"),
        Some("2"),
        "the root sketch accumulates across emissions"
    );
}

#[test]
fn self_monitoring_answers_hottest_channels_and_latency_quantiles() {
    let mut monitor = Monitor::new(MonitorConfig {
        self_monitor: true,
        ..MonitorConfig::default()
    });
    for peer in ["hub", "a.com", "b.com"] {
        monitor.add_peer(peer);
    }
    // A normal subscription generating monitored traffic.
    monitor
        .submit(
            "hub",
            r#"for $c in inCOM(<p>a.com</p> <p>b.com</p>)
               return <seen method="{$c.callMethod}"/>
               by email "ops@example.org";"#,
        )
        .unwrap();
    // Aggregates over the monitor's own metrics stream: hottest channels by
    // (delta) bytes, and the p99 of the per-round dispatch latency.
    let hottest = monitor
        .submit(
            "hub",
            r#"for $m in monStats(<p>self</p>)
               where $m.kind = "channel"
               return topk($m.channel, 3, $m.bytes)
               by email "ops@example.org";"#,
        )
        .unwrap();
    let p99 = monitor
        .submit(
            "hub",
            r#"for $m in monStats(<p>self</p>)
               where $m.kind = "dispatchRound"
               return quantile($m.micros, 0.99)
               by email "ops@example.org";"#,
        )
        .unwrap();
    for i in 0..30u64 {
        let callee = if i % 3 == 0 { "b.com" } else { "a.com" };
        monitor.inject_soap_call(&call(i, callee, "Get", 5));
    }
    monitor.run_until_idle();
    // The next quiescence pass snapshots the stats the traffic produced.
    monitor.run_until_idle();

    let hot = last_answer(&monitor, &hottest);
    assert_eq!(hot.attr("kind"), Some("topk"));
    let entries: Vec<&Element> = hot.children_named("entry").collect();
    assert!(
        !entries.is_empty(),
        "traffic must surface at least one measured channel"
    );
    for entry in &entries {
        let key = entry.attr("key").unwrap();
        assert!(
            key.contains('@'),
            "channel keys are #stream@peer identities, got {key}"
        );
    }
    // Entries arrive weighted by bytes, heaviest first.
    let weights: Vec<u64> = entries
        .iter()
        .map(|e| e.attr("count").unwrap().parse().unwrap())
        .collect();
    assert!(weights.windows(2).all(|w| w[0] >= w[1]));

    let latency = last_answer(&monitor, &p99);
    assert_eq!(latency.attr("kind"), Some("quantile"));
    assert_eq!(latency.attr("q"), Some("990"));
    let value: f64 = latency.attr("value").unwrap().parse().unwrap();
    assert!(value >= 0.0, "p99 dispatch latency must parse, got {value}");
}

#[test]
fn aggregates_survive_concurrent_subscriptions_and_unsubscribe() {
    let mut monitor = monitor_over(&["a.com", "b.com"]);
    let text = r#"for $c in inCOM(<p>a.com</p> <p>b.com</p>)
                  return topk($c.callMethod, 2)
                  by email "ops@example.org";"#;
    let first = monitor.submit("hub", text).unwrap();
    // Events seen only by the first subscription.
    monitor.inject_soap_call(&call(1, "a.com", "Get", 5));
    monitor.run_until_idle();
    // A second, identical aggregate deployed mid-stream starts from zero.
    let second = monitor.submit("hub", text).unwrap();
    monitor.inject_soap_call(&call(2, "b.com", "Put", 5));
    monitor.run_until_idle();
    let first_answer = last_answer(&monitor, &first);
    assert_eq!(first_answer.attr("total"), Some("2"));
    let second_answer = last_answer(&monitor, &second);
    assert_eq!(
        second_answer.attr("total"),
        Some("1"),
        "a mid-stream subscriber must only count post-deployment events"
    );
    // Tearing the first down leaves the second running.
    assert!(monitor.unsubscribe(&first));
    monitor.inject_soap_call(&call(3, "a.com", "Put", 5));
    monitor.run_until_idle();
    let second_answer = last_answer(&monitor, &second);
    assert_eq!(second_answer.attr("total"), Some("2"));
}

//! Live stream reuse (E7): covered subscriptions attach to the producing
//! operator's *running* output channel — same sink bytes as a full
//! redeployment, measurably less network traffic and operator work — and
//! shared subtrees are refcounted, so teardown removes only unshared work
//! until the last subscriber lets go.

use p2pmon_core::{Monitor, MonitorConfig, SubscriptionHandle};
use p2pmon_workloads::OverlappingStorm;

const SHAPES: usize = 8;

fn run_storm(
    enable_reuse: bool,
    workers: usize,
    n_subs: usize,
    n_calls: usize,
) -> (Monitor, Vec<SubscriptionHandle>) {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_reuse,
        workers,
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "backend.net"] {
        monitor.add_peer(peer);
    }
    let storm = OverlappingStorm::new(1, SHAPES);
    let handles: Vec<SubscriptionHandle> = storm
        .subscriptions(n_subs)
        .iter()
        .map(|text| monitor.submit("manager.org", text).expect("storm deploys"))
        .collect();
    let mut traffic = OverlappingStorm::new(9, SHAPES);
    for call in traffic.calls(n_calls) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    (monitor, handles)
}

/// The acceptance criterion: reuse-on delivers byte-identical sink output to
/// reuse-off while sending measurably fewer network messages and running
/// fewer operators.
#[test]
fn overlapping_storm_reuse_is_byte_identical_and_cheaper() {
    const SUBS: usize = 64;
    const CALLS: usize = 60;
    let (on, on_handles) = run_storm(true, 1, SUBS, CALLS);
    let (off, off_handles) = run_storm(false, 1, SUBS, CALLS);

    let mut delivered = 0;
    for (a, b) in on_handles.iter().zip(&off_handles) {
        let on_results = on.results(a);
        assert_eq!(on_results, off.results(b), "sink divergence");
        delivered += on_results.len();
    }
    assert!(delivered > 0, "the storm must deliver incidents");

    let stats = on.reuse_stats();
    assert!(
        stats.hit_rate() >= 0.5,
        "at {SUBS} subs over {SHAPES} shapes most deployments reuse: {stats:?}"
    );
    assert!(stats.operators_saved > 0);
    assert!(stats.messages_saved > 0, "multicast must share messages");

    let on_messages = on.network_stats().total_messages;
    let off_messages = off.network_stats().total_messages;
    assert!(
        on_messages < off_messages,
        "reuse-on must send fewer messages ({on_messages} vs {off_messages})"
    );
    assert!(
        on.operator_invocations < off.operator_invocations,
        "covered subtrees must not re-run operators ({} vs {})",
        on.operator_invocations,
        off.operator_invocations
    );
    // Reuse-off searched nothing, so its aggregate reports no subscriptions.
    assert_eq!(off.reuse_stats().subscriptions, 0);
}

/// Reuse stays byte-identical under the parallel scheduler, and the
/// persistent worker pool is spun up once and survives across rounds.
#[test]
fn parallel_reuse_matches_sequential_and_reuses_the_pool() {
    const SUBS: usize = 24;
    const CALLS: usize = 40;
    let (sequential, seq_handles) = run_storm(true, 1, SUBS, CALLS);
    assert_eq!(
        sequential.scheduler_threads(),
        0,
        "the sequential oracle never spawns pool threads"
    );

    let mut parallel = Monitor::new(MonitorConfig {
        enable_reuse: true,
        workers: 3,
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "backend.net"] {
        parallel.add_peer(peer);
    }
    let storm = OverlappingStorm::with_peers(1, SHAPES, 4);
    let handles: Vec<SubscriptionHandle> = storm
        .subscriptions(SUBS)
        .iter()
        .map(|text| parallel.submit("manager.org", text).expect("deploys"))
        .collect();
    let mut reference = Monitor::new(MonitorConfig {
        enable_reuse: true,
        workers: 1,
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "backend.net"] {
        reference.add_peer(peer);
    }
    let ref_handles: Vec<SubscriptionHandle> = storm
        .subscriptions(SUBS)
        .iter()
        .map(|text| reference.submit("manager.org", text).expect("deploys"))
        .collect();

    let calls = OverlappingStorm::with_peers(9, SHAPES, 4).calls(CALLS);
    for call in &calls {
        parallel.inject_soap_call(call);
        reference.inject_soap_call(call);
    }
    parallel.run_until_idle();
    reference.run_until_idle();

    let pool_after_first = parallel.scheduler_threads();
    // Workers are clamped to the host's parallelism: on a multi-core host the
    // pool matches the configured count; on a single core the monitor takes
    // the inline sequential path and never spawns threads.
    let clamped = parallel.effective_workers();
    let expected_pool = if clamped > 1 { clamped } else { 0 };
    assert_eq!(
        pool_after_first, expected_pool,
        "the pool matches the clamped worker count"
    );
    // A second burst reuses the same pool instead of respawning.
    let more = OverlappingStorm::with_peers(11, SHAPES, 4).calls(CALLS);
    for call in &more {
        parallel.inject_soap_call(call);
        reference.inject_soap_call(call);
    }
    parallel.run_until_idle();
    reference.run_until_idle();
    assert_eq!(parallel.scheduler_threads(), pool_after_first);

    for (p, r) in handles.iter().zip(&ref_handles) {
        assert_eq!(
            parallel.results(p),
            reference.results(r),
            "parallel reuse must match the sequential oracle"
        );
    }
    let _ = seq_handles;
}

/// Shared-subtree teardown: with two overlapping subscriptions, tearing the
/// *producer* down keeps the shared stream serving the survivor; tearing the
/// survivor down afterwards retracts everything — definitions, tasks,
/// routes, queued work.
#[test]
fn shared_stream_survives_producer_unsubscribe_then_fully_retracts() {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_reuse: true,
        workers: 1,
        ..MonitorConfig::default()
    });
    monitor.add_peer("manager.org");
    let storm = OverlappingStorm::new(3, 1);
    // Two byte-identical subscriptions (shape 0), different sinks: the first
    // deploys the pipeline, the second attaches to its live root stream.
    let producer = monitor
        .submit("manager.org", &storm.subscription(0))
        .expect("producer deploys");
    let survivor = monitor
        .submit("manager.org", &storm.subscription(1))
        .expect("survivor deploys");
    let report = monitor.report(&survivor).expect("report");
    assert!(report.reuse.reused_nodes > 0, "the duplicate must reuse");
    assert_eq!(
        report.tasks, 1,
        "a covered plan is one channel subscription"
    );

    let mut traffic = OverlappingStorm::new(5, 1);
    for call in traffic.calls(60) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    let before = monitor.results(&survivor);
    assert!(!before.is_empty(), "the survivor sees incidents");
    assert_eq!(
        monitor.results(&producer),
        before,
        "identical subscriptions"
    );

    // Tear the producer down: its sink freezes, but the shared subtree keeps
    // producing for the survivor.
    assert!(monitor.unsubscribe(&producer));
    let producer_frozen = monitor.results(&producer).len();
    let hub = monitor.peer_host("hub.net").expect("hub is registered");
    assert!(
        hub.hosted_tasks() > 0,
        "the shared producing subtree must survive the producer's unsubscribe"
    );
    assert_eq!(
        hub.registered_selects(),
        1,
        "the shared Select keeps its engine registration"
    );
    assert!(
        !monitor.stream_db_mut().is_empty(),
        "referenced stream definitions stay published"
    );

    for call in traffic.calls(60) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert!(
        monitor.results(&survivor).len() > before.len(),
        "the shared stream keeps serving the survivor"
    );
    assert_eq!(
        monitor.results(&producer).len(),
        producer_frozen,
        "the producer's sink stays frozen"
    );

    // Tear the survivor down: the last reference goes, and the teardown
    // cascades through the shared subtree.
    assert!(monitor.unsubscribe(&survivor));
    assert!(
        monitor.stream_db_mut().is_empty(),
        "all definitions retract with the last subscriber"
    );
    for peer in ["hub.net", "manager.org"] {
        let host = monitor.peer_host(peer).expect("registered");
        assert_eq!(host.hosted_tasks(), 0, "{peer} must host no tasks");
        assert_eq!(host.registered_selects(), 0);
        assert_eq!(host.queued_work(), 0);
        assert_eq!(host.pending_alert_count(), 0);
    }
    // Fresh traffic is simply unobserved; nothing panics, nothing delivers.
    let survivor_frozen = monitor.results(&survivor).len();
    for call in traffic.calls(20) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert_eq!(monitor.results(&survivor).len(), survivor_frozen);
}

/// A chain of retired producers tears down back to front: A produces, B
/// reuses A, C reuses B's subscription point.  Retiring A and B keeps the
/// whole chain alive for C; retiring C cascades the teardown through both.
#[test]
fn retired_producer_chain_cascades_on_last_release() {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_reuse: true,
        workers: 1,
        ..MonitorConfig::default()
    });
    monitor.add_peer("manager.org");
    let storm = OverlappingStorm::new(3, 1);
    let a = monitor
        .submit("manager.org", &storm.subscription(0))
        .unwrap();
    let b = monitor
        .submit("manager.org", &storm.subscription(1))
        .unwrap();
    let c = monitor
        .submit("manager.org", &storm.subscription(2))
        .unwrap();

    assert!(monitor.unsubscribe(&a));
    assert!(monitor.unsubscribe(&b));
    let mut traffic = OverlappingStorm::new(5, 1);
    for call in traffic.calls(60) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert!(
        !monitor.results(&c).is_empty(),
        "the survivor keeps receiving through the retired chain"
    );
    assert!(!monitor.stream_db_mut().is_empty());

    assert!(monitor.unsubscribe(&c));
    assert!(
        monitor.stream_db_mut().is_empty(),
        "the last subscriber's release cascades through every retired owner"
    );
    for peer in ["hub.net", "manager.org"] {
        let host = monitor.peer_host(peer).expect("registered");
        assert_eq!(host.hosted_tasks(), 0, "{peer} must host no tasks");
    }
}

/// An explicit `channel("#name@manager")` subscription resolves to the
/// canonical identity — the peer placement chose to *emit* the stream — and
/// receives the live multicast, even though the user addressed the channel
/// by the manager that declared it.
#[test]
fn explicit_channel_reference_resolves_to_the_emitting_peer() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    for peer in ["p", "watcher.org", "a.com", "b.com", "meteo.com"] {
        monitor.add_peer(peer);
    }
    let producer = monitor
        .submit("p", p2pmon_p2pml::METEO_SUBSCRIPTION)
        .expect("producer deploys");
    // METEO publishes `by channel "alertQoS"` managed at "p", but placement
    // emits the root from one of the monitored peers.
    let consumer = monitor
        .submit(
            "watcher.org",
            r##"for $x in channel("#alertQoS@p")
                return <seen kind="{$x.type}"/>
                by email "ops@example.org";"##,
        )
        .expect("consumer deploys");

    monitor.inject_soap_call(&p2pmon_alerters::SoapCall::new(
        1,
        "http://a.com",
        "http://meteo.com",
        "GetTemperature",
        1_000,
        1_020,
    ));
    monitor.run_until_idle();
    assert_eq!(monitor.results(&producer).len(), 1);
    let seen = monitor.results(&consumer);
    assert_eq!(
        seen.len(),
        1,
        "the channel consumer must receive the published stream live"
    );
    assert_eq!(seen[0].attr("kind"), Some("slowAnswer"));
}

/// Two live subscriptions publishing the same BY-channel name from the same
/// peer: the second must not take an owner reference on the first's
/// definition — its pipeline tears down normally on unsubscribe instead of
/// being pinned forever.
#[test]
fn colliding_published_channels_do_not_pin_the_second_publisher() {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_reuse: false, // force both to deploy their own pipeline
        ..MonitorConfig::default()
    });
    monitor.add_peer("manager.org");
    let text = |i: usize| {
        format!(
            "for $c in outCOM(<p>hub.net</p>)\n\
             where $c.callMethod = \"Method{i}\"\n\
             return <hit method=\"{{$c.callMethod}}\"/>\n\
             by publish as channel \"shared\";"
        )
    };
    // Both roots restructure on hub.net and publish channel "shared": the
    // definition key collides.
    let first = monitor.submit("manager.org", &text(0)).expect("deploys");
    let second = monitor.submit("manager.org", &text(1)).expect("deploys");

    let hub = monitor.peer_host("hub.net").expect("hub is registered");
    let hosted_with_both = hub.hosted_tasks();
    assert!(monitor.unsubscribe(&second));
    let hub = monitor.peer_host("hub.net").expect("hub is registered");
    assert!(
        hub.hosted_tasks() < hosted_with_both,
        "the second publisher's tasks must not be pinned by the first's definition"
    );

    assert!(monitor.unsubscribe(&first));
    let hub = monitor.peer_host("hub.net").expect("hub is registered");
    assert_eq!(hub.hosted_tasks(), 0);
    assert!(monitor.stream_db_mut().is_empty());
    let _ = first;
}

/// Submit order is not a contract: a subscriber that attaches to a
/// published channel *before* its producer exists is re-pointed to the
/// canonical identity when the producer deploys, and receives the stream.
#[test]
fn channel_subscriber_deployed_before_the_producer_still_receives() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    for peer in ["p", "watcher.org", "a.com", "b.com", "meteo.com"] {
        monitor.add_peer(peer);
    }
    // The consumer first: nothing is published yet, so the reference keeps
    // its declared (manager, name) identity for now.
    let consumer = monitor
        .submit(
            "watcher.org",
            r##"for $x in channel("#alertQoS@p")
                return <seen kind="{$x.type}"/>
                by email "ops@example.org";"##,
        )
        .expect("consumer deploys");
    let producer = monitor
        .submit("p", p2pmon_p2pml::METEO_SUBSCRIPTION)
        .expect("producer deploys");

    monitor.inject_soap_call(&p2pmon_alerters::SoapCall::new(
        1,
        "http://a.com",
        "http://meteo.com",
        "GetTemperature",
        1_000,
        1_020,
    ));
    monitor.run_until_idle();
    assert_eq!(monitor.results(&producer).len(), 1);
    assert_eq!(
        monitor.results(&consumer).len(),
        1,
        "an early subscriber must be re-pointed to the canonical channel"
    );
    // Teardown still balances: the consumer's reference was moved to the
    // canonical key, so unsubscribing both retracts everything.
    assert!(monitor.unsubscribe(&consumer));
    assert!(monitor.unsubscribe(&producer));
    assert!(monitor.stream_db_mut().is_empty());
}

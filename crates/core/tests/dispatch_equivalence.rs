//! Property test: for random alert/subscription mixes, engine-gated dispatch
//! delivers exactly the same sink results as the pre-refactor linear path
//! (kept behind the `naive_dispatch` config flag as the equivalence oracle).

use proptest::prelude::*;

use p2pmon_core::{Monitor, MonitorConfig, PlacementStrategy, SubscriptionHandle};
use p2pmon_workloads::SubscriptionStorm;

fn run_storm(
    naive_dispatch: bool,
    placement: PlacementStrategy,
    enable_reuse: bool,
    storm: &SubscriptionStorm,
    n_subs: usize,
    n_calls: usize,
    traffic_seed: u64,
) -> (Monitor, Vec<SubscriptionHandle>) {
    let mut monitor = Monitor::new(MonitorConfig {
        placement,
        enable_reuse,
        naive_dispatch,
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "hub.net", "backend.net"] {
        monitor.add_peer(peer);
    }
    let handles: Vec<SubscriptionHandle> = storm
        .subscriptions(n_subs)
        .iter()
        .map(|text| monitor.submit("manager.org", text).expect("storm deploys"))
        .collect();
    let mut traffic = storm.clone_with_seed(traffic_seed);
    for call in traffic.calls(n_calls) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    (monitor, handles)
}

trait CloneWithSeed {
    fn clone_with_seed(&self, seed: u64) -> SubscriptionStorm;
}

impl CloneWithSeed for SubscriptionStorm {
    fn clone_with_seed(&self, seed: u64) -> SubscriptionStorm {
        let mut storm = SubscriptionStorm::new(seed);
        storm.methods.clone_from(&self.methods);
        storm.pattern_every = self.pattern_every;
        storm.residual_every = self.residual_every;
        storm.slow_fraction = self.slow_fraction;
        storm.detail_fraction = self.detail_fraction;
        storm
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_dispatch_equals_naive_dispatch(
        seed in 0u64..10_000,
        n_subs in 1usize..24,
        n_calls in 1usize..32,
        methods in 1usize..6,
        pattern_every in 0usize..4,
        residual_every in 0usize..5,
        centralized in proptest::bool::ANY,
        enable_reuse in proptest::bool::ANY,
    ) {
        let mut storm = SubscriptionStorm::new(seed);
        storm.methods = (0..methods).map(|i| format!("Method{i}")).collect();
        storm.pattern_every = pattern_every;
        storm.residual_every = residual_every;
        let placement = if centralized {
            PlacementStrategy::Centralized
        } else {
            PlacementStrategy::PushToSources
        };

        let (engine_monitor, engine_handles) =
            run_storm(false, placement, enable_reuse, &storm, n_subs, n_calls, seed ^ 0xbeef);
        let (naive_monitor, naive_handles) =
            run_storm(true, placement, enable_reuse, &storm, n_subs, n_calls, seed ^ 0xbeef);

        for (e, n) in engine_handles.iter().zip(&naive_handles) {
            prop_assert_eq!(
                engine_monitor.results(e),
                naive_monitor.results(n),
                "sink divergence (seed {}, {} subs, {} calls, {:?}, reuse {})",
                seed, n_subs, n_calls, placement, enable_reuse
            );
        }
        // Gating can only remove work, never add it.
        prop_assert!(
            engine_monitor.operator_invocations <= naive_monitor.operator_invocations
        );
    }
}

//! Property tests: for random alert/subscription mixes, engine-gated
//! batched dispatch delivers exactly the same sink results as the
//! pre-refactor linear path (kept behind the `naive_dispatch` config flag as
//! the equivalence oracle) — and it does so for *any* worker count of the
//! parallel peer scheduler, with `workers = 1` (the in-order sequential
//! path) as the second oracle.

use proptest::prelude::*;

use p2pmon_core::{Monitor, MonitorConfig, PlacementStrategy, ReplicaPolicy, SubscriptionHandle};
use p2pmon_workloads::{OverlappingStorm, SubscriptionStorm};

#[allow(clippy::too_many_arguments)]
fn run_storm_with_workers(
    naive_dispatch: bool,
    workers: usize,
    placement: PlacementStrategy,
    enable_reuse: bool,
    storm: &SubscriptionStorm,
    n_subs: usize,
    n_calls: usize,
    traffic_seed: u64,
) -> (Monitor, Vec<SubscriptionHandle>) {
    let mut monitor = Monitor::new(MonitorConfig {
        placement,
        enable_reuse,
        naive_dispatch,
        workers,
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "backend.net"] {
        monitor.add_peer(peer);
    }
    let handles: Vec<SubscriptionHandle> = storm
        .subscriptions(n_subs)
        .iter()
        .map(|text| monitor.submit("manager.org", text).expect("storm deploys"))
        .collect();
    let mut traffic = storm.clone_with_seed(traffic_seed);
    for call in traffic.calls(n_calls) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    (monitor, handles)
}

fn run_storm(
    naive_dispatch: bool,
    placement: PlacementStrategy,
    enable_reuse: bool,
    storm: &SubscriptionStorm,
    n_subs: usize,
    n_calls: usize,
    traffic_seed: u64,
) -> (Monitor, Vec<SubscriptionHandle>) {
    run_storm_with_workers(
        naive_dispatch,
        1,
        placement,
        enable_reuse,
        storm,
        n_subs,
        n_calls,
        traffic_seed,
    )
}

trait CloneWithSeed {
    fn clone_with_seed(&self, seed: u64) -> SubscriptionStorm;
}

impl CloneWithSeed for SubscriptionStorm {
    fn clone_with_seed(&self, seed: u64) -> SubscriptionStorm {
        let mut storm = SubscriptionStorm::new(seed);
        storm.monitored_peers.clone_from(&self.monitored_peers);
        storm.methods.clone_from(&self.methods);
        storm.pattern_every = self.pattern_every;
        storm.residual_every = self.residual_every;
        storm.slow_fraction = self.slow_fraction;
        storm.detail_fraction = self.detail_fraction;
        storm
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_dispatch_equals_naive_dispatch(
        seed in 0u64..10_000,
        n_subs in 1usize..24,
        n_calls in 1usize..32,
        methods in 1usize..6,
        pattern_every in 0usize..4,
        residual_every in 0usize..5,
        centralized in proptest::bool::ANY,
        enable_reuse in proptest::bool::ANY,
    ) {
        let mut storm = SubscriptionStorm::new(seed);
        storm.methods = (0..methods).map(|i| format!("Method{i}")).collect();
        storm.pattern_every = pattern_every;
        storm.residual_every = residual_every;
        let placement = if centralized {
            PlacementStrategy::Centralized
        } else {
            PlacementStrategy::PushToSources
        };

        let (engine_monitor, engine_handles) =
            run_storm(false, placement, enable_reuse, &storm, n_subs, n_calls, seed ^ 0xbeef);
        let (naive_monitor, naive_handles) =
            run_storm(true, placement, enable_reuse, &storm, n_subs, n_calls, seed ^ 0xbeef);

        for (e, n) in engine_handles.iter().zip(&naive_handles) {
            prop_assert_eq!(
                engine_monitor.results(e),
                naive_monitor.results(n),
                "sink divergence (seed {}, {} subs, {} calls, {:?}, reuse {})",
                seed, n_subs, n_calls, placement, enable_reuse
            );
        }
        // Gating can only remove work, never add it.
        prop_assert!(
            engine_monitor.operator_invocations <= naive_monitor.operator_invocations
        );
    }

    /// Batched-parallel dispatch ≡ the sequential engine path ≡ naive
    /// fan-out: same sinks for any worker count, across single- and
    /// multi-peer storms.
    #[test]
    fn parallel_dispatch_equals_sequential_and_naive_for_any_worker_count(
        seed in 0u64..10_000,
        n_subs in 1usize..24,
        n_calls in 1usize..32,
        n_peers in 1usize..5,
        workers in 2usize..6,
        pattern_every in 0usize..4,
        residual_every in 0usize..5,
    ) {
        let mut storm = SubscriptionStorm::with_peers(seed, n_peers);
        storm.pattern_every = pattern_every;
        storm.residual_every = residual_every;
        let placement = PlacementStrategy::PushToSources;

        let (parallel_monitor, parallel_handles) = run_storm_with_workers(
            false, workers, placement, false, &storm, n_subs, n_calls, seed ^ 0xfeed);
        let (sequential_monitor, sequential_handles) = run_storm_with_workers(
            false, 1, placement, false, &storm, n_subs, n_calls, seed ^ 0xfeed);
        let (naive_monitor, naive_handles) = run_storm_with_workers(
            true, workers, placement, false, &storm, n_subs, n_calls, seed ^ 0xfeed);

        for ((p, s), n) in parallel_handles.iter().zip(&sequential_handles).zip(&naive_handles) {
            prop_assert_eq!(
                parallel_monitor.results(p),
                sequential_monitor.results(s),
                "parallel vs sequential sink divergence (seed {}, {} subs, {} calls, {} peers, {} workers)",
                seed, n_subs, n_calls, n_peers, workers
            );
            prop_assert_eq!(
                parallel_monitor.results(p),
                naive_monitor.results(n),
                "parallel vs naive sink divergence (seed {}, {} subs, {} calls, {} peers, {} workers)",
                seed, n_subs, n_calls, n_peers, workers
            );
        }
        // The schedule must not change the work done, only who does it.
        prop_assert_eq!(
            parallel_monitor.operator_invocations,
            sequential_monitor.operator_invocations
        );
        prop_assert_eq!(
            parallel_monitor.dispatch_stats(),
            sequential_monitor.dispatch_stats()
        );
    }

    /// Live stream reuse is an optimization, not a semantics change:
    /// reuse-on delivers byte-identical sink output to reuse-off over
    /// overlapping-subscription storms, for any worker count, without ever
    /// sending more network messages or running more operators.
    #[test]
    fn reuse_on_equals_reuse_off_for_any_worker_count(
        seed in 0u64..10_000,
        shapes in 1usize..6,
        n_subs in 1usize..28,
        n_calls in 1usize..32,
        n_peers in 1usize..4,
        workers in 1usize..6,
    ) {
        let run = |enable_reuse: bool| -> (Monitor, Vec<SubscriptionHandle>) {
            let mut monitor = Monitor::new(MonitorConfig {
                enable_reuse,
                workers,
                ..MonitorConfig::default()
            });
            for peer in ["manager.org", "backend.net"] {
                monitor.add_peer(peer);
            }
            let storm = OverlappingStorm::with_peers(seed, shapes, n_peers);
            let handles: Vec<SubscriptionHandle> = storm
                .subscriptions(n_subs)
                .iter()
                .map(|text| monitor.submit("manager.org", text).expect("storm deploys"))
                .collect();
            let mut traffic = OverlappingStorm::with_peers(seed ^ 0xc0de, shapes, n_peers);
            for call in traffic.calls(n_calls) {
                monitor.inject_soap_call(&call);
            }
            monitor.run_until_idle();
            (monitor, handles)
        };
        let (reuse_on, on_handles) = run(true);
        let (reuse_off, off_handles) = run(false);
        for (a, b) in on_handles.iter().zip(&off_handles) {
            prop_assert_eq!(
                reuse_on.results(a),
                reuse_off.results(b),
                "reuse sink divergence (seed {}, {} shapes, {} subs, {} calls, {} peers, {} workers)",
                seed, shapes, n_subs, n_calls, n_peers, workers
            );
        }
        prop_assert!(
            reuse_on.network_stats().total_messages
                <= reuse_off.network_stats().total_messages,
            "reuse must never add traffic ({} vs {})",
            reuse_on.network_stats().total_messages,
            reuse_off.network_stats().total_messages
        );
        prop_assert!(reuse_on.operator_invocations <= reuse_off.operator_invocations);
    }

    /// Replica re-publication is an optimization, not a semantics change:
    /// with consumers spread over clustered manager peers, replica-on
    /// delivers byte-identical sink output to replica-off for any worker
    /// count — and the origin hub never sends *more* messages than the
    /// replica-free baseline.
    #[test]
    fn replicas_on_equals_replicas_off_for_any_worker_count(
        seed in 0u64..10_000,
        shapes in 1usize..5,
        clusters in 1usize..4,
        per_cluster in 1usize..4,
        n_subs in 1usize..28,
        n_calls in 1usize..24,
        workers in 1usize..5,
    ) {
        let storm = OverlappingStorm::clustered(seed, shapes, clusters, per_cluster);
        let run = |enable_replicas: bool| -> (Monitor, Vec<SubscriptionHandle>) {
            let mut monitor = Monitor::new(MonitorConfig {
                enable_replicas,
                workers,
                network: p2pmon_net::NetworkConfig {
                    latency: storm.latency_model(),
                    ..p2pmon_net::NetworkConfig::default()
                },
                ..MonitorConfig::default()
            });
            monitor.add_peer("backend.net");
            let handles: Vec<SubscriptionHandle> = storm
                .subscriptions(n_subs)
                .iter()
                .enumerate()
                .map(|(i, text)| {
                    monitor
                        .submit(storm.manager_of(i), text)
                        .expect("clustered storm deploys")
                })
                .collect();
            let mut traffic = storm.clone();
            for call in traffic.calls(n_calls) {
                monitor.inject_soap_call(&call);
            }
            monitor.run_until_idle();
            (monitor, handles)
        };
        let (replica_on, on_handles) = run(true);
        let (replica_off, off_handles) = run(false);
        for (a, b) in on_handles.iter().zip(&off_handles) {
            prop_assert_eq!(
                replica_on.results(a),
                replica_off.results(b),
                "replica sink divergence (seed {}, {} shapes, {}x{} consumers, {} subs, {} calls, {} workers)",
                seed, shapes, clusters, per_cluster, n_subs, n_calls, workers
            );
        }
        let origin_out = |monitor: &Monitor| {
            monitor
                .network_stats()
                .per_peer()
                .get(&"hub.net".into())
                .map(|t| t.messages_out)
                .unwrap_or(0)
        };
        prop_assert!(
            origin_out(&replica_on) <= origin_out(&replica_off),
            "replicas must never add origin-peer load ({} vs {})",
            origin_out(&replica_on),
            origin_out(&replica_off)
        );
    }

    /// Rate-aware placement is an optimization, not a semantics change:
    /// with per-channel rates measured during a warmup phase (calls drained
    /// one at a time so the EWMA sees distinct instants), rate-aware-on
    /// delivers byte-identical sink output to rate-aware-off over paired
    /// multi-input storms, for any worker count.
    #[test]
    fn rate_aware_placement_on_equals_off_for_any_worker_count(
        seed in 0u64..10_000,
        clusters in 1usize..3,
        per_cluster in 1usize..4,
        n_subs in 1usize..16,
        warmup_calls in 4usize..14,
        n_calls in 1usize..20,
        workers in 1usize..5,
    ) {
        let storm = OverlappingStorm::paired(seed, 4, clusters, per_cluster);
        let run = |rate_aware: bool| -> (Monitor, Vec<SubscriptionHandle>) {
            let mut monitor = Monitor::new(MonitorConfig {
                rate_aware_placement: rate_aware,
                workers,
                network: p2pmon_net::NetworkConfig {
                    latency: storm.latency_model(),
                    ..p2pmon_net::NetworkConfig::default()
                },
                ..MonitorConfig::default()
            });
            monitor.add_peer("backend.net");
            let warmup_subs = 2usize.min(n_subs);
            let mut handles: Vec<SubscriptionHandle> = Vec::with_capacity(n_subs);
            let mut traffic = storm.clone();
            for i in 0..warmup_subs {
                handles.push(
                    monitor
                        .submit(storm.manager_of(i), &storm.subscription(i))
                        .expect("paired storm deploys"),
                );
            }
            for call in traffic.calls(warmup_calls) {
                monitor.inject_soap_call(&call);
                monitor.run_until_idle();
            }
            for i in warmup_subs..n_subs {
                handles.push(
                    monitor
                        .submit(storm.manager_of(i), &storm.subscription(i))
                        .expect("paired storm deploys"),
                );
            }
            for call in traffic.calls(n_calls) {
                monitor.inject_soap_call(&call);
            }
            monitor.run_until_idle();
            (monitor, handles)
        };
        let (aware, aware_handles) = run(true);
        let (count, count_handles) = run(false);
        for (a, b) in aware_handles.iter().zip(&count_handles) {
            prop_assert_eq!(
                aware.results(a),
                count.results(b),
                "rate-aware sink divergence (seed {}, {}x{} consumers, {} subs, {}+{} calls, {} workers)",
                seed, clusters, per_cluster, n_subs, warmup_calls, n_calls, workers
            );
        }
    }

    /// The replica *policy* is a restriction of eager replication: however
    /// its knobs are set — rate gate, per-stream cap, cluster-median
    /// steering — policy-on delivers byte-identical sink output to
    /// replica-off, and the origin hub never sends *more* messages than the
    /// replica-free baseline.  A mid-run `enforce_replica_policy` sweep
    /// (which may retract decayed replicas and re-attach their consumers)
    /// must not lose or duplicate items either.
    #[test]
    fn replica_policy_never_increases_origin_egress(
        seed in 0u64..10_000,
        shapes in 1usize..4,
        clusters in 1usize..4,
        per_cluster in 1usize..4,
        n_subs in 1usize..20,
        n_calls in 2usize..16,
        workers in 1usize..5,
        min_rate in 0u32..200,
        max_replicas in 0usize..5,
        prefer_median in proptest::bool::ANY,
    ) {
        let storm = OverlappingStorm::clustered(seed, shapes, clusters, per_cluster);
        let policy = ReplicaPolicy {
            min_rate: min_rate as f64,
            max_replicas_per_stream: max_replicas,
            prefer_cluster_median: prefer_median,
        };
        let run = |enable_replicas: bool, policy: ReplicaPolicy| {
            let mut monitor = Monitor::new(MonitorConfig {
                enable_replicas,
                replica_policy: policy,
                workers,
                network: p2pmon_net::NetworkConfig {
                    latency: storm.latency_model(),
                    ..p2pmon_net::NetworkConfig::default()
                },
                ..MonitorConfig::default()
            });
            monitor.add_peer("backend.net");
            let handles: Vec<SubscriptionHandle> = storm
                .subscriptions(n_subs)
                .iter()
                .enumerate()
                .map(|(i, text)| {
                    monitor
                        .submit(storm.manager_of(i), text)
                        .expect("clustered storm deploys")
                })
                .collect();
            let mut traffic = storm.clone();
            // Drained per call so a `min_rate > 0` gate sees live EWMA
            // rates instead of one collapsed logical instant.
            for call in traffic.calls(n_calls) {
                monitor.inject_soap_call(&call);
                monitor.run_until_idle();
            }
            monitor.enforce_replica_policy();
            for call in traffic.calls(n_calls) {
                monitor.inject_soap_call(&call);
            }
            monitor.run_until_idle();
            (monitor, handles)
        };
        let (policy_on, on_handles) = run(true, policy.clone());
        let (off, off_handles) = run(false, ReplicaPolicy::default());
        for (a, b) in on_handles.iter().zip(&off_handles) {
            prop_assert_eq!(
                policy_on.results(a),
                off.results(b),
                "policy sink divergence (seed {}, {} shapes, {}x{} consumers, {} subs, {} calls, {} workers, {:?})",
                seed, shapes, clusters, per_cluster, n_subs, n_calls, workers, policy
            );
        }
        let origin_out = |monitor: &Monitor| {
            monitor
                .network_stats()
                .per_peer()
                .get(&"hub.net".into())
                .map(|t| t.messages_out)
                .unwrap_or(0)
        };
        prop_assert!(
            origin_out(&policy_on) <= origin_out(&off),
            "the replica policy must never add origin-peer load ({} vs {}, {:?})",
            origin_out(&policy_on),
            origin_out(&off),
            policy
        );
        if max_replicas == 0 {
            prop_assert_eq!(
                policy_on.replica_stats().replicas_created, 0,
                "a zero cap must suppress every declaration"
            );
        }
    }

    /// Churn under faults: random interleavings of subscribe, unsubscribe,
    /// cluster crash/recover, cluster-aligned partition/heal and traffic
    /// processing preserve the equivalence chain — engine ≡ naive dispatch,
    /// replica-on ≡ replica-off, and any worker count ≡ sequential.  Faults
    /// are *cluster-granular* by construction: replica chains never leave a
    /// cluster (ties go to the origin), so failing or splitting whole
    /// clusters loses the same items under every variant, and the sinks must
    /// stay byte-identical after the final heal.
    #[test]
    fn churn_under_faults_preserves_the_equivalence_chain(
        seed in 0u64..10_000,
        shapes in 1usize..4,
        clusters in 2usize..4,
        per_cluster in 1usize..4,
        n_base in 1usize..10,
        workers in 2usize..5,
        ops in proptest::collection::vec((0u8..6, 0usize..16), 1..12),
    ) {
        let storm = OverlappingStorm::clustered(seed, shapes, clusters, per_cluster);
        let cluster_peers = |c: usize| -> Vec<String> {
            (0..per_cluster).map(|p| format!("c{c}-peer{p}.org")).collect()
        };
        let run = |naive_dispatch: bool, enable_replicas: bool, workers: usize|
            -> (Monitor, Vec<Option<SubscriptionHandle>>) {
            let mut monitor = Monitor::new(MonitorConfig {
                naive_dispatch,
                enable_replicas,
                workers,
                network: p2pmon_net::NetworkConfig {
                    latency: storm.latency_model(),
                    ..p2pmon_net::NetworkConfig::default()
                },
                ..MonitorConfig::default()
            });
            monitor.add_peer("backend.net");
            let mut traffic = storm.clone();
            let mut handles: Vec<Option<SubscriptionHandle>> = Vec::new();
            let mut next_sub = 0usize;
            let subscribe = |monitor: &mut Monitor,
                                 handles: &mut Vec<Option<SubscriptionHandle>>,
                                 next_sub: &mut usize| {
                let i = *next_sub;
                *next_sub += 1;
                let handle = monitor
                    .submit(storm.manager_of(i), &storm.subscription(i))
                    .expect("churn storm deploys");
                handles.push(Some(handle));
            };
            for _ in 0..n_base {
                subscribe(&mut monitor, &mut handles, &mut next_sub);
            }
            let mut downed: Vec<usize> = Vec::new();
            for &(op, arg) in &ops {
                match op {
                    0 => subscribe(&mut monitor, &mut handles, &mut next_sub),
                    1 => {
                        let live: Vec<usize> = handles
                            .iter()
                            .enumerate()
                            .filter_map(|(i, h)| h.as_ref().map(|_| i))
                            .collect();
                        if !live.is_empty() {
                            let victim = live[arg % live.len()];
                            let handle = handles[victim].take().expect("victim was live");
                            monitor.unsubscribe(&handle);
                        }
                    }
                    2 => {
                        let c = arg % clusters;
                        if !downed.contains(&c) {
                            downed.push(c);
                            for peer in cluster_peers(c) {
                                monitor.fail_peer(&peer);
                            }
                        }
                    }
                    3 => {
                        for c in downed.drain(..) {
                            for peer in cluster_peers(c) {
                                monitor.recover_peer(&peer);
                            }
                        }
                    }
                    4 => {
                        let groups: Vec<Vec<String>> =
                            (0..clusters).map(cluster_peers).collect();
                        monitor.partition_peers(&groups);
                    }
                    _ => monitor.heal_partition(),
                }
                for call in traffic.calls(3) {
                    monitor.inject_soap_call(&call);
                }
                monitor.run_until_idle();
            }
            for c in downed.drain(..) {
                for peer in cluster_peers(c) {
                    monitor.recover_peer(&peer);
                }
            }
            monitor.heal_partition();
            for call in traffic.calls(10) {
                monitor.inject_soap_call(&call);
            }
            monitor.run_until_idle();
            (monitor, handles)
        };

        let (engine, engine_h) = run(false, true, workers);
        let (sequential, sequential_h) = run(false, true, 1);
        let (no_replica, no_replica_h) = run(false, false, workers);
        let (naive, naive_h) = run(true, false, workers);

        for (i, handle) in engine_h.iter().enumerate() {
            let Some(handle) = handle else {
                prop_assert!(sequential_h[i].is_none());
                prop_assert!(no_replica_h[i].is_none());
                prop_assert!(naive_h[i].is_none());
                continue;
            };
            let expected = engine.results(handle);
            prop_assert_eq!(
                &expected,
                &sequential.results(sequential_h[i].as_ref().expect("aligned")),
                "worker-count divergence at sub {} (seed {}, {} shapes, {}x{}, {} workers)",
                i, seed, shapes, clusters, per_cluster, workers
            );
            prop_assert_eq!(
                &expected,
                &no_replica.results(no_replica_h[i].as_ref().expect("aligned")),
                "replica divergence at sub {} (seed {}, {} shapes, {}x{}, {} workers)",
                i, seed, shapes, clusters, per_cluster, workers
            );
            prop_assert_eq!(
                &expected,
                &naive.results(naive_h[i].as_ref().expect("aligned")),
                "engine-vs-naive divergence at sub {} (seed {}, {} shapes, {}x{}, {} workers)",
                i, seed, shapes, clusters, per_cluster, workers
            );
        }
        // Fault drops are accounted identically however the engine is
        // configured: the ledger identity holds in every variant.
        for monitor in [&engine, &sequential, &no_replica, &naive] {
            let stats = monitor.network_stats();
            prop_assert_eq!(
                stats.dropped_messages,
                stats.dropped_by_cause.total(),
                "drop ledger identity (seed {seed})"
            );
        }
    }
}

//! The many-subscription acceptance scenario: with 256 subscriptions hosted
//! on one peer, the shared filter engine keeps per-alert cost sublinear in
//! the subscription count, and engine-gated dispatch delivers exactly the
//! sink results of the naive linear path.

use p2pmon_core::{Monitor, MonitorConfig, SubscriptionHandle};
use p2pmon_workloads::SubscriptionStorm;

fn storm_monitor(naive_dispatch: bool, n: usize) -> (Monitor, Vec<SubscriptionHandle>) {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_reuse: false,
        naive_dispatch,
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "hub.net", "backend.net"] {
        monitor.add_peer(peer);
    }
    let storm = SubscriptionStorm::new(1);
    let handles = storm
        .subscriptions(n)
        .iter()
        .map(|text| monitor.submit("manager.org", text).expect("storm deploys"))
        .collect();
    (monitor, handles)
}

#[test]
fn per_alert_complex_evaluations_stay_sublinear_at_256_subscriptions() {
    const SUBS: usize = 256;
    const CALLS: usize = 40;
    let (mut monitor, _) = storm_monitor(false, SUBS);
    let host = monitor.peer_host("hub.net").expect("hub is registered");
    assert_eq!(
        host.registered_selects(),
        SUBS,
        "every subscription's Select lands on the monitored peer"
    );
    for call in SubscriptionStorm::new(9).calls(CALLS) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();

    let stats = monitor.peer_filter_stats("hub.net").expect("engine stats");
    assert_eq!(
        stats.documents, CALLS as u64,
        "each alert runs through the shared engine exactly once"
    );
    assert!(
        stats.complex_evaluations < (SUBS as u64) * stats.documents,
        "per-alert complex evaluations ({} over {} documents) must be \
         strictly less than the subscription count {SUBS}",
        stats.complex_evaluations,
        stats.documents
    );
    // Much stronger in practice: only the subscriptions whose shared simple
    // prefix matched stay active — a small fraction of the 256.
    assert!(
        stats.complex_evaluations / stats.documents <= (SUBS as u64) / 4,
        "the AES stage prunes most complex subscriptions per alert, got {} / doc",
        stats.complex_evaluations / stats.documents
    );
    let dispatch = monitor.dispatch_stats();
    assert!(
        dispatch.gate_rejections > 0,
        "rejected subscriptions must be skipped before their operators run"
    );
}

#[test]
fn engine_dispatch_matches_naive_dispatch_and_does_less_work() {
    const SUBS: usize = 64;
    const CALLS: usize = 30;
    let (mut engine_monitor, engine_handles) = storm_monitor(false, SUBS);
    let (mut naive_monitor, naive_handles) = storm_monitor(true, SUBS);
    for call in SubscriptionStorm::new(4).calls(CALLS) {
        engine_monitor.inject_soap_call(&call);
        naive_monitor.inject_soap_call(&call);
    }
    engine_monitor.run_until_idle();
    naive_monitor.run_until_idle();

    for (e, n) in engine_handles.iter().zip(&naive_handles) {
        assert_eq!(
            engine_monitor.results(e),
            naive_monitor.results(n),
            "engine and naive dispatch must deliver identical sink results"
        );
    }
    assert!(
        engine_monitor.operator_invocations < naive_monitor.operator_invocations,
        "gated dispatch ({}) must invoke fewer operators than linear fan-out ({})",
        engine_monitor.operator_invocations,
        naive_monitor.operator_invocations
    );
    assert_eq!(naive_monitor.dispatch_stats().engine_documents, 0);
}

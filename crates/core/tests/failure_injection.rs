//! Failure injection through the full Monitor path: message loss
//! (`drop_probability > 0`) and downed peers must degrade results without
//! panicking or deadlocking `run_until_idle`.

use std::collections::HashMap;

use p2pmon_alerters::SoapCall;
use p2pmon_core::{Monitor, MonitorConfig, PlacementStrategy};
use p2pmon_net::NetworkConfig;
use p2pmon_p2pml::METEO_SUBSCRIPTION;
use p2pmon_workloads::{SoapWorkload, SubscriptionStorm};

fn meteo_monitor(drop_probability: f64) -> Monitor {
    let mut monitor = Monitor::new(MonitorConfig {
        placement: PlacementStrategy::PushToSources,
        enable_reuse: false,
        network: NetworkConfig {
            drop_probability,
            seed: 13,
            ..NetworkConfig::default()
        },
        ..MonitorConfig::default()
    });
    for peer in ["p", "a.com", "b.com", "meteo.com"] {
        monitor.add_peer(peer);
    }
    monitor
}

fn meteo_calls(n: usize) -> Vec<SoapCall> {
    SoapWorkload::meteo(21).calls(n)
}

#[test]
fn message_loss_degrades_results_without_hanging() {
    let mut clean = meteo_monitor(0.0);
    let clean_handle = clean.submit("p", METEO_SUBSCRIPTION).unwrap();
    let mut lossy = meteo_monitor(0.4);
    let lossy_handle = lossy.submit("p", METEO_SUBSCRIPTION).unwrap();

    for call in meteo_calls(200) {
        clean.inject_soap_call(&call);
        lossy.inject_soap_call(&call);
    }
    clean.run_until_idle();
    lossy.run_until_idle();

    let clean_results = clean.results(&clean_handle).len();
    let lossy_results = lossy.results(&lossy_handle).len();
    assert!(clean_results > 0, "the workload contains slow calls");
    assert!(
        lossy_results <= clean_results,
        "lossy ({lossy_results}) cannot beat clean ({clean_results})"
    );
    assert!(lossy.network_stats().dropped_messages > 0);
}

#[test]
fn downed_peer_degrades_results_and_recovers() {
    let mut monitor = meteo_monitor(0.0);
    let handle = monitor.submit("p", METEO_SUBSCRIPTION).unwrap();
    let calls = meteo_calls(120);

    for call in &calls[..40] {
        monitor.inject_soap_call(call);
    }
    monitor.run_until_idle();
    let before_failure = monitor.results(&handle).len();
    assert!(before_failure > 0);

    // meteo.com hosts the join: with it down, no further incidents form and
    // in-flight traffic to it is dropped — but the rounds still terminate.
    monitor.fail_peer("meteo.com");
    assert!(monitor.is_peer_down("meteo.com"));
    for call in &calls[40..80] {
        monitor.inject_soap_call(call);
    }
    monitor.run_until_idle();
    let during_failure = monitor.results(&handle).len();
    assert_eq!(
        during_failure, before_failure,
        "a downed join peer cannot produce new incidents"
    );
    assert!(monitor.network_stats().dropped_messages > 0);

    // After recovery the monitor keeps working on fresh traffic.
    monitor.recover_peer("meteo.com");
    for call in &calls[80..] {
        monitor.inject_soap_call(call);
    }
    monitor.run_until_idle();
    assert!(
        monitor.results(&handle).len() >= during_failure,
        "recovery must not lose already-delivered results"
    );
}

#[test]
fn storm_survives_loss_and_a_downed_monitored_peer() {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_reuse: false,
        network: NetworkConfig {
            drop_probability: 0.25,
            seed: 5,
            ..NetworkConfig::default()
        },
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "hub.net", "backend.net"] {
        monitor.add_peer(peer);
    }
    let storm = SubscriptionStorm::new(2);
    let handles: Vec<_> = storm
        .subscriptions(24)
        .iter()
        .map(|text| monitor.submit("manager.org", text).unwrap())
        .collect();

    let mut traffic = SubscriptionStorm::new(17);
    for call in traffic.calls(30) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    let mid: usize = handles.iter().map(|h| monitor.results(h).len()).sum();
    assert!(mid > 0, "storm traffic matches some subscriptions");

    // The monitored peer itself goes down: its alerters stop draining, so no
    // new alerts enter the system, and the rounds still terminate.
    monitor.fail_peer("hub.net");
    for call in traffic.calls(30) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    let down: usize = handles.iter().map(|h| monitor.results(h).len()).sum();
    assert_eq!(down, mid, "a downed monitored peer produces no alerts");

    // On recovery, the alerts buffered while down drain and results resume.
    monitor.recover_peer("hub.net");
    monitor.run_until_idle();
    let recovered: usize = handles.iter().map(|h| monitor.results(h).len()).sum();
    assert!(recovered >= down);
}

/// Downing a peer *mid-batch* — after channel traffic has landed in its
/// alert inbox but before the next dispatch phase processes it — must not
/// lose or double-deliver alerts anywhere else: subscriptions on live peers
/// deliver exactly the clean run's results, the downed peer's sink receives
/// a duplicate-free subset of its clean results, and the discarded batch is
/// accounted in `dropped_by_failure`.
#[test]
fn peer_down_mid_batch_loses_no_alert_and_duplicates_nothing() {
    // Subscription A publishes from hub.net sources and manager-side
    // restructure; subscription B (submitted from observer.org) reuses A's
    // filtered streams, so alerts reach B's tasks over channels — the
    // traffic that sits in observer.org's alert batch between ticks.
    let build = || {
        let mut monitor = Monitor::new(MonitorConfig {
            placement: PlacementStrategy::PushToSources,
            enable_reuse: true,
            workers: 3,
            ..MonitorConfig::default()
        });
        for peer in ["p", "observer.org", "a.com", "b.com", "meteo.com"] {
            monitor.add_peer(peer);
        }
        let a = monitor.submit("p", METEO_SUBSCRIPTION).unwrap();
        let b = monitor.submit("observer.org", METEO_SUBSCRIPTION).unwrap();
        (monitor, a, b)
    };
    let calls = meteo_calls(80);

    let (mut clean, clean_a, clean_b) = build();
    for call in &calls {
        clean.inject_soap_call(call);
    }
    clean.run_until_idle();
    assert!(!clean.results(&clean_b).is_empty(), "B sees incidents");

    let (mut faulty, faulty_a, faulty_b) = build();
    for call in &calls {
        faulty.inject_soap_call(call);
    }
    // Run rounds until reused-channel traffic is parked in observer.org's
    // alert batch (the covered plan attaches to the producer's *root*
    // output, which takes a few rounds to flow), then down the peer before
    // the next phase processes the batch.
    let mut parked = false;
    for _ in 0..16 {
        faulty.tick();
        if faulty
            .peer_host("observer.org")
            .expect("observer is registered")
            .pending_alert_count()
            > 0
        {
            parked = true;
            break;
        }
    }
    assert!(
        parked,
        "channel traffic must reach the reuse subscriber's batch"
    );
    faulty.fail_peer("observer.org");
    faulty.run_until_idle();

    // Live peers: nothing lost, nothing duplicated.
    assert_eq!(
        faulty.results(&faulty_a),
        clean.results(&clean_a),
        "subscription on live peers must deliver exactly the clean results"
    );
    // Downed peer: a duplicate-free subset of the clean multiset.
    let multiset = |results: Vec<p2pmon_xmlkit::Element>| -> HashMap<String, usize> {
        let mut counts = HashMap::new();
        for r in results {
            *counts.entry(r.to_xml()).or_insert(0) += 1;
        }
        counts
    };
    let clean_counts = multiset(clean.results(&clean_b));
    let faulty_counts = multiset(faulty.results(&faulty_b));
    for (result, n) in &faulty_counts {
        assert!(
            clean_counts.get(result).is_some_and(|clean_n| n <= clean_n),
            "result delivered more often than in the clean run: {result}"
        );
    }
    assert!(
        faulty.results(&faulty_b).len() < clean.results(&clean_b).len(),
        "the downed peer must actually have missed deliveries"
    );
    // Every missing delivery is accounted: the batch pending on the downed
    // peer was discarded, not silently lost.
    assert!(
        faulty.dispatch_stats().dropped_by_failure > 0,
        "the interrupted batch must be counted as dropped: {:?}",
        faulty.dispatch_stats()
    );
}

//! Property tests: the zero-copy hot path (one `Arc<Element>` shared by
//! every consumer of an item) is an optimization, not a semantics change.
//! The oracle is `deep_clone_items` — a config flag that deep-copies every
//! item at creation, so no two operators can possibly alias a tree.  For
//! any storm, any worker count, and a mutation-heavy operator mix
//! (restructuring patterns and LET residuals rewrite trees — the
//! copy-on-write points), sink output must be byte-identical between the
//! shared and the isolated runs.

use proptest::prelude::*;

use p2pmon_core::{Monitor, MonitorConfig, PlacementStrategy, SubscriptionHandle};
use p2pmon_workloads::SubscriptionStorm;

#[allow(clippy::too_many_arguments)]
fn run_storm(
    deep_clone_items: bool,
    workers: usize,
    enable_reuse: bool,
    storm_seed: u64,
    n_peers: usize,
    pattern_every: usize,
    residual_every: usize,
    n_subs: usize,
    n_calls: usize,
) -> (Monitor, Vec<SubscriptionHandle>) {
    let mut storm = SubscriptionStorm::with_peers(storm_seed, n_peers);
    storm.pattern_every = pattern_every;
    storm.residual_every = residual_every;
    let mut monitor = Monitor::new(MonitorConfig {
        placement: PlacementStrategy::PushToSources,
        enable_reuse,
        deep_clone_items,
        workers,
        ..MonitorConfig::default()
    });
    for peer in ["manager.org", "backend.net"] {
        monitor.add_peer(peer);
    }
    let handles: Vec<SubscriptionHandle> = storm
        .subscriptions(n_subs)
        .iter()
        .map(|text| monitor.submit("manager.org", text).expect("storm deploys"))
        .collect();
    let mut traffic = SubscriptionStorm::with_peers(storm_seed, n_peers);
    traffic.pattern_every = pattern_every;
    traffic.residual_every = residual_every;
    for call in traffic.calls(n_calls) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    (monitor, handles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Shared-`Arc` dispatch ≡ the deep-clone-everything oracle: same sink
    /// bytes for any worker count.  `pattern_every`/`residual_every` down to
    /// 1 make every subscription rewrite its input (restructure + LET
    /// residual), exercising the copy-on-write boundary on most items.
    #[test]
    fn zero_copy_dispatch_equals_deep_clone_oracle(
        seed in 0u64..10_000,
        n_subs in 1usize..24,
        n_calls in 1usize..28,
        n_peers in 1usize..5,
        workers in 1usize..6,
        pattern_every in 1usize..4,
        residual_every in 1usize..4,
        enable_reuse in proptest::bool::ANY,
    ) {
        let (shared, shared_handles) = run_storm(
            false, workers, enable_reuse, seed, n_peers,
            pattern_every, residual_every, n_subs, n_calls,
        );
        let (isolated, isolated_handles) = run_storm(
            true, workers, enable_reuse, seed, n_peers,
            pattern_every, residual_every, n_subs, n_calls,
        );
        for (s, i) in shared_handles.iter().zip(&isolated_handles) {
            prop_assert_eq!(
                shared.results(s),
                isolated.results(i),
                "zero-copy sink divergence — an operator mutated a shared tree \
                 (seed {}, {} subs, {} calls, {} peers, {} workers, \
                  pattern_every {}, residual_every {}, reuse {})",
                seed, n_subs, n_calls, n_peers, workers,
                pattern_every, residual_every, enable_reuse
            );
        }
        // Sharing changes who owns the bytes, never how much work runs.
        prop_assert_eq!(shared.operator_invocations, isolated.operator_invocations);
    }
}

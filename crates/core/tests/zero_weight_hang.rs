use p2pmon_alerters::SoapCall;
use p2pmon_core::{Monitor, MonitorConfig};

#[test]
fn zero_weight_item_does_not_hang_run_until_idle() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor.add_peer("mon.org");
    monitor.add_peer("a.com");
    let _h = monitor
        .submit(
            "mon.org",
            r#"for $c in inCOM(<p>a.com</p>)
               return topk($c.callMethod, 3, $c.duration)
               by email "x@mon.org";"#,
        )
        .expect("compiles");
    // duration = 0 => weight 0
    monitor.inject_soap_call(&SoapCall::new(1, "http://c.org", "a.com", "M", 10, 10));
    monitor.run_until_idle();
}

//! Replica re-publication (Section 5's `<InChannel>` declarations), live:
//! a subscriber of a hot channel hosted away from the origin re-publishes
//! the stream from its own peer, later consumers attach to the closest
//! copy, and the consuming peers carry the fan-out hops the origin would
//! otherwise send — with byte-identical sink output, replica-on vs
//! replica-off.  Teardown retracts declarations, hands the forwarding role
//! over when the forwarder leaves first, and provider selection skips
//! downed replica peers.

use p2pmon_core::{Monitor, MonitorConfig, ReplicaPolicy, SubscriptionHandle};
use p2pmon_net::NetworkConfig;
use p2pmon_workloads::OverlappingStorm;

const ORIGIN: &str = "hub.net";

/// A monitor over the clustered storm's latency topology.
fn clustered_monitor(storm: &OverlappingStorm, enable_replicas: bool, workers: usize) -> Monitor {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_replicas,
        workers,
        network: NetworkConfig {
            latency: storm.latency_model(),
            ..NetworkConfig::default()
        },
        ..MonitorConfig::default()
    });
    monitor.add_peer("backend.net");
    monitor
}

/// Deploys `n_subs` clustered subscriptions and drives `n_calls` of traffic.
fn run_clustered(
    storm: &OverlappingStorm,
    enable_replicas: bool,
    n_subs: usize,
    n_calls: usize,
) -> (Monitor, Vec<SubscriptionHandle>) {
    let mut monitor = clustered_monitor(storm, enable_replicas, 1);
    let handles: Vec<SubscriptionHandle> = storm
        .subscriptions(n_subs)
        .iter()
        .enumerate()
        .map(|(i, text)| {
            monitor
                .submit(storm.manager_of(i), text)
                .expect("clustered storm deploys")
        })
        .collect();
    let mut traffic = storm.clone();
    for call in traffic.calls(n_calls) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    (monitor, handles)
}

/// Messages the origin hub sent (the load replicas are meant to move off
/// of it).
fn origin_messages_out(monitor: &Monitor) -> u64 {
    monitor
        .network_stats()
        .per_peer()
        .get(&ORIGIN.into())
        .map(|t| t.messages_out)
        .unwrap_or(0)
}

/// The acceptance criterion: over clustered consumers, replica-on delivers
/// byte-identical sink output to replica-off while the origin peer sends
/// measurably fewer messages — consumer peers forward the difference.
#[test]
fn clustered_storm_replicas_offload_the_origin_with_identical_sinks() {
    const SHAPES: usize = 8;
    const SUBS: usize = 64;
    const CALLS: usize = 60;
    let storm = OverlappingStorm::clustered(1, SHAPES, 2, 4);
    let (on, on_handles) = run_clustered(&storm, true, SUBS, CALLS);
    let (off, off_handles) = run_clustered(&storm, false, SUBS, CALLS);

    let mut delivered = 0;
    for (a, b) in on_handles.iter().zip(&off_handles) {
        let results = on.results(a);
        assert_eq!(results, off.results(b), "sink divergence");
        delivered += results.len();
    }
    assert!(delivered > 0, "the storm must deliver incidents");

    let stats = on.replica_stats();
    assert!(stats.replicas_created > 0, "consumers must re-publish");
    assert!(
        stats.consumers_via_replica > 0,
        "later consumers must attach to replicas: {stats:?}"
    );
    assert!(
        stats.replica_share() >= 0.5,
        "most remote consumers ride a replica: {stats:?}"
    );
    assert!(
        stats.origin_messages_saved > 0,
        "replica peers must forward on the origin's behalf"
    );
    // The replica counters also flow through the E7 aggregate.
    assert_eq!(on.reuse_stats().replicas, stats);
    assert_eq!(off.replica_stats().replicas_created, 0);

    let on_origin = origin_messages_out(&on);
    let off_origin = origin_messages_out(&off);
    assert!(
        on_origin < off_origin,
        "the origin must send fewer messages with replicas ({on_origin} vs {off_origin})"
    );
    assert!(
        on.network_stats().total_messages <= off.network_stats().total_messages,
        "forwarded hops must not add net traffic ({} vs {})",
        on.network_stats().total_messages,
        off.network_stats().total_messages
    );
}

/// Teardown: the last subscriber of a replicated stream retracts its peer's
/// declaration, and a fresh consumer then falls back to the origin.
#[test]
fn last_subscriber_retracts_the_replica_and_selection_falls_back_to_origin() {
    let storm = OverlappingStorm::clustered(3, 1, 1, 3);
    let mut monitor = clustered_monitor(&storm, true, 1);
    let producer = monitor
        .submit("c0-peer0.org", &storm.subscription(0))
        .expect("producer deploys");
    let dup1 = monitor
        .submit("c0-peer1.org", &storm.subscription(1))
        .expect("first duplicate deploys");
    let origin = monitor
        .report(&dup1)
        .expect("report")
        .reuse
        .reused_defs
        .first()
        .cloned()
        .expect("the duplicate reuses the producer's stream");
    assert_eq!(origin.0, ORIGIN, "the pipeline root runs at the hub");
    // A second duplicate on another peer attaches to the replica (close)
    // rather than the origin (far), and re-publishes from its own peer too.
    let dup2 = monitor
        .submit("c0-peer2.org", &storm.subscription(2))
        .expect("second duplicate deploys");
    let provider = monitor
        .report(&dup2)
        .expect("report")
        .reuse
        .subscribed_channels[0]
        .clone();
    assert_eq!(
        provider.0, "c0-peer1.org",
        "the close replica beats the far origin"
    );
    assert_eq!(
        monitor
            .stream_db_mut()
            .replicas_of(&origin.0, &origin.1)
            .len(),
        2,
        "both consuming peers re-publish"
    );

    assert!(monitor.unsubscribe(&dup2));
    assert!(monitor.unsubscribe(&dup1));
    assert!(
        monitor
            .stream_db_mut()
            .replicas_of(&origin.0, &origin.1)
            .is_empty(),
        "replica declarations retract with their last subscriber"
    );
    let stats = monitor.replica_stats();
    assert_eq!(stats.replicas_created, 2);
    assert_eq!(stats.replicas_retracted, 2);

    // With every replica gone, a fresh consumer is served by the origin.
    let late = monitor
        .submit("c0-peer1.org", &storm.subscription(3))
        .expect("late duplicate deploys");
    let provider = monitor
        .report(&late)
        .expect("report")
        .reuse
        .subscribed_channels[0]
        .clone();
    assert_eq!(provider, origin, "selection falls back to the origin");
    let mut traffic = storm.clone();
    for call in traffic.calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert!(
        !monitor.results(&late).is_empty(),
        "the origin serves the late consumer"
    );
    assert_eq!(monitor.results(&late), monitor.results(&producer));
}

/// A replica's subscribers are not stranded when the replica goes away:
/// retracting the declaration re-attaches them to the origin.
#[test]
fn orphaned_replica_subscribers_fall_back_to_the_origin() {
    let storm = OverlappingStorm::clustered(5, 1, 1, 3);
    let mut monitor = clustered_monitor(&storm, true, 1);
    let producer = monitor
        .submit("c0-peer0.org", &storm.subscription(0))
        .expect("producer deploys");
    let replica_sub = monitor
        .submit("c0-peer1.org", &storm.subscription(1))
        .expect("replica subscriber deploys");
    // This consumer rides c0-peer1's replica.
    let orphan = monitor
        .submit("c0-peer2.org", &storm.subscription(2))
        .expect("orphan-to-be deploys");
    assert_eq!(
        monitor
            .report(&orphan)
            .expect("report")
            .reuse
            .subscribed_channels[0]
            .0,
        "c0-peer1.org"
    );

    let mut traffic = storm.clone();
    for call in traffic.calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    let before = monitor.results(&orphan).len();
    assert!(before > 0, "the forwarded stream reaches the orphan");

    // The replica's only local subscriber leaves: the declaration retracts
    // and the orphan is re-attached to the origin.
    assert!(monitor.unsubscribe(&replica_sub));
    for call in traffic.calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert!(
        monitor.results(&orphan).len() > before,
        "the orphan keeps receiving, now from the origin"
    );
    assert_eq!(monitor.results(&orphan), monitor.results(&producer));
}

/// A removed *forwarder* with surviving same-peer subscribers hands the
/// replica over instead of retracting it: the declaration is replaced in
/// place, the survivor pulls from the origin, and downstream replica
/// subscribers keep receiving.
#[test]
fn forwarder_hand_off_keeps_replica_subscribers_fed() {
    let storm = OverlappingStorm::clustered(7, 1, 1, 3);
    let mut monitor = clustered_monitor(&storm, true, 1);
    let producer = monitor
        .submit("c0-peer0.org", &storm.subscription(0))
        .expect("producer deploys");
    let forwarder = monitor
        .submit("c0-peer1.org", &storm.subscription(1))
        .expect("forwarder deploys");
    // Same peer: shares c0-peer1's replica declaration (no duplicate entry).
    let survivor = monitor
        .submit("c0-peer1.org", &storm.subscription(2))
        .expect("survivor deploys");
    // Another peer, attached to c0-peer1's replica.
    let downstream = monitor
        .submit("c0-peer2.org", &storm.subscription(3))
        .expect("downstream deploys");
    let origin = monitor
        .report(&forwarder)
        .expect("report")
        .reuse
        .reused_defs[0]
        .clone();
    assert_eq!(
        monitor
            .stream_db_mut()
            .replicas_of(&origin.0, &origin.1)
            .iter()
            .filter(|r| r.replica_peer == "c0-peer1.org")
            .count(),
        1,
        "same-peer subscribers share one declaration"
    );

    let mut traffic = storm.clone();
    for call in traffic.calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    let fed = monitor.results(&downstream).len();
    assert!(fed > 0);

    // The forwarder leaves first: the survivor takes the forwarding role.
    assert!(monitor.unsubscribe(&forwarder));
    let replicas = monitor
        .stream_db_mut()
        .replicas_of(&origin.0, &origin.1)
        .into_iter()
        .filter(|r| r.replica_peer == "c0-peer1.org")
        .cloned()
        .collect::<Vec<_>>();
    assert_eq!(replicas.len(), 1, "the declaration survives the hand-off");

    for call in traffic.calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert!(
        monitor.results(&survivor).len() > fed,
        "the new forwarder keeps receiving"
    );
    assert!(
        monitor.results(&downstream).len() > fed,
        "downstream replica subscribers keep receiving through the hand-off"
    );
    assert_eq!(monitor.results(&downstream), monitor.results(&producer));

    // Full teardown still balances: nothing is left behind.
    for handle in [survivor, downstream, producer] {
        assert!(monitor.unsubscribe(&handle));
    }
    assert!(monitor.stream_db_mut().is_empty());
    assert!(monitor
        .stream_db_mut()
        .replicas_of(&origin.0, &origin.1)
        .is_empty());
}

/// A monitor over the clustered storm's topology with an explicit
/// [`ReplicaPolicy`] (the plain [`clustered_monitor`] keeps the eager
/// default).
fn policy_monitor(storm: &OverlappingStorm, policy: ReplicaPolicy) -> Monitor {
    let mut monitor = Monitor::new(MonitorConfig {
        enable_replicas: true,
        replica_policy: policy,
        workers: 1,
        network: NetworkConfig {
            latency: storm.latency_model(),
            ..NetworkConfig::default()
        },
        ..MonitorConfig::default()
    });
    monitor.add_peer("backend.net");
    monitor
}

/// Drives `n` calls one at a time with the network drained in between, so
/// the per-channel EWMA rates see distinct logical instants (bulk injection
/// collapses every alert onto one timestamp and the rates read as zero).
fn drive(monitor: &mut Monitor, traffic: &mut OverlappingStorm, n: usize) {
    for call in traffic.calls(n) {
        monitor.inject_soap_call(&call);
        monitor.run_until_idle();
    }
}

/// Rate decay: replicas created while a stream was hot are retracted by
/// `enforce_replica_policy` once the measured pressure decays below the
/// hysteresis threshold, and their consumers re-attach to the origin with
/// no lost or duplicated items.
#[test]
fn rate_decay_retracts_replicas_and_consumers_reattach_without_loss() {
    let storm = OverlappingStorm::clustered(3, 1, 1, 3);
    let mut monitor = policy_monitor(
        &storm,
        ReplicaPolicy {
            min_rate: 1.0,
            max_replicas_per_stream: usize::MAX,
            prefer_cluster_median: false,
        },
    );
    let producer = monitor
        .submit("c0-peer0.org", &storm.subscription(0))
        .expect("producer deploys");
    let mut traffic = storm.clone();
    // Warm the stream so the remote consumers clear the `min_rate` gate.
    drive(&mut monitor, &mut traffic, 40);
    let dup1 = monitor
        .submit("c0-peer1.org", &storm.subscription(1))
        .expect("dup1 deploys");
    let dup2 = monitor
        .submit("c0-peer2.org", &storm.subscription(2))
        .expect("dup2 deploys");
    let origin = monitor
        .report(&dup1)
        .expect("report")
        .reuse
        .reused_defs
        .first()
        .cloned()
        .expect("dup1 reuses the producer's stream");
    assert!(
        !monitor
            .stream_db_mut()
            .replicas_of(&origin.0, &origin.1)
            .is_empty(),
        "a hot stream earns replica declarations"
    );
    assert_eq!(
        monitor.subscribed_providers(&dup2)[0].0,
        "c0-peer1.org",
        "the later consumer rides the close replica"
    );
    drive(&mut monitor, &mut traffic, 60);
    let before = (monitor.results(&dup1).len(), monitor.results(&dup2).len());
    assert!(before.0 > 0 && before.1 > 0, "the replica chain delivers");

    // Silence: with no traffic, the EWMA decays far below the hysteresis
    // threshold (`min_rate / 2`) and the policy sweep retracts every copy.
    monitor.advance_time(60_000);
    let retracted = monitor.enforce_replica_policy();
    assert!(retracted >= 1, "decayed replicas must retract");
    assert!(
        monitor
            .stream_db_mut()
            .replicas_of(&origin.0, &origin.1)
            .is_empty(),
        "no declaration survives a fully decayed stream"
    );
    assert_eq!(
        monitor.replica_stats().replicas_retracted as usize,
        retracted
    );
    assert_eq!(
        monitor.subscribed_providers(&dup2)[0],
        origin,
        "orphans re-attach to the origin once every replica is gone"
    );

    // The re-homed consumers keep receiving, byte-identically: nothing was
    // lost or duplicated across the retraction.
    drive(&mut monitor, &mut traffic, 60);
    assert!(monitor.results(&dup1).len() > before.0);
    assert!(monitor.results(&dup2).len() > before.1);
    assert_eq!(
        monitor.results(&dup1),
        monitor.results(&dup2),
        "co-deployed duplicates stay byte-identical through the retraction"
    );
    let _ = producer;
}

/// The eager default (`min_rate == 0`) never retracts, however long the
/// stream stays silent — `enforce_replica_policy` is a no-op.
#[test]
fn eager_default_policy_never_retracts_on_decay() {
    let storm = OverlappingStorm::clustered(17, 1, 1, 3);
    let mut monitor = clustered_monitor(&storm, true, 1);
    let producer = monitor
        .submit("c0-peer0.org", &storm.subscription(0))
        .expect("producer deploys");
    let dup = monitor
        .submit("c0-peer1.org", &storm.subscription(1))
        .expect("dup deploys");
    let origin = monitor
        .report(&dup)
        .expect("report")
        .reuse
        .reused_defs
        .first()
        .cloned()
        .expect("dup reuses the producer's stream");
    assert_eq!(
        monitor
            .stream_db_mut()
            .replicas_of(&origin.0, &origin.1)
            .len(),
        1
    );
    monitor.advance_time(600_000);
    assert_eq!(
        monitor.enforce_replica_policy(),
        0,
        "min_rate == 0 keeps the historical eager rule: nothing retracts"
    );
    assert_eq!(
        monitor
            .stream_db_mut()
            .replicas_of(&origin.0, &origin.1)
            .len(),
        1
    );
    let _ = producer;
}

/// The creation side of the policy: a cold stream is not replicated at all,
/// and once traffic makes it hot, the declaration lands on the cluster
/// *medoid* (a peer that already hosts a consumer) rather than on whichever
/// consumer happened to arrive next — later consumers then ride that copy.
#[test]
fn policy_gates_cold_streams_and_declares_at_the_cluster_median() {
    let storm = OverlappingStorm::clustered(3, 1, 1, 4);
    let mut monitor = policy_monitor(
        &storm,
        ReplicaPolicy {
            min_rate: 1.0,
            max_replicas_per_stream: usize::MAX,
            prefer_cluster_median: true,
        },
    );
    let producer = monitor
        .submit("c0-peer0.org", &storm.subscription(0))
        .expect("producer deploys");
    // Cold stream: no measured rate yet, so the first remote consumer is
    // served by the origin and declares nothing.
    let cold = monitor
        .submit("c0-peer1.org", &storm.subscription(1))
        .expect("cold consumer deploys");
    let origin = monitor
        .report(&cold)
        .expect("report")
        .reuse
        .reused_defs
        .first()
        .cloned()
        .expect("the consumer reuses the producer's stream");
    assert!(
        monitor
            .stream_db_mut()
            .replicas_of(&origin.0, &origin.1)
            .is_empty(),
        "a cold stream is not worth forwarding"
    );
    assert_eq!(monitor.subscribed_providers(&cold)[0], origin);

    let mut traffic = storm.clone();
    drive(&mut monitor, &mut traffic, 40);

    // Hot now: the next arrival clears the gate, and the declaration lands
    // on the cluster medoid — peer1, which already hosts a consumer — not
    // on the arriving peer3.
    let late = monitor
        .submit("c0-peer3.org", &storm.subscription(2))
        .expect("late consumer deploys");
    let replica_peers: Vec<String> = monitor
        .stream_db_mut()
        .replicas_of(&origin.0, &origin.1)
        .iter()
        .map(|r| r.replica_peer.clone())
        .collect();
    assert_eq!(
        replica_peers,
        vec!["c0-peer1.org".to_string()],
        "the declaration goes to the cluster medoid, not the arriving peer"
    );
    // The medoid copy serves later consumers, and no duplicate declaration
    // piles up behind it.
    let rider = monitor
        .submit("c0-peer2.org", &storm.subscription(3))
        .expect("rider deploys");
    assert_eq!(monitor.subscribed_providers(&rider)[0].0, "c0-peer1.org");
    assert_eq!(
        monitor
            .stream_db_mut()
            .replicas_of(&origin.0, &origin.1)
            .len(),
        1,
        "median steering keeps one copy per cluster"
    );

    drive(&mut monitor, &mut traffic, 60);
    assert!(
        !monitor.results(&late).is_empty(),
        "the medoid copy delivers"
    );
    assert_eq!(
        monitor.results(&late),
        monitor.results(&rider),
        "riders of the medoid copy match the origin-fed consumer"
    );
    assert_eq!(monitor.results(&cold), monitor.results(&producer));
}

/// Failure injection: provider selection never routes a new consumer
/// through a downed replica peer.
#[test]
fn downed_replica_peer_is_skipped_by_provider_selection() {
    let storm = OverlappingStorm::clustered(9, 1, 1, 3);
    let mut monitor = clustered_monitor(&storm, true, 1);
    let producer = monitor
        .submit("c0-peer0.org", &storm.subscription(0))
        .expect("producer deploys");
    let replica_sub = monitor
        .submit("c0-peer1.org", &storm.subscription(1))
        .expect("replica subscriber deploys");
    let origin = monitor
        .report(&replica_sub)
        .expect("report")
        .reuse
        .reused_defs[0]
        .clone();

    monitor.fail_peer("c0-peer1.org");
    // The replica at c0-peer1 would be closest, but its peer is down.
    let late = monitor
        .submit("c0-peer2.org", &storm.subscription(2))
        .expect("late consumer deploys");
    assert_eq!(
        monitor
            .report(&late)
            .expect("report")
            .reuse
            .subscribed_channels[0],
        origin,
        "a downed replica peer is never selected as provider"
    );
    let mut traffic = storm.clone();
    for call in traffic.calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert!(
        !monitor.results(&late).is_empty(),
        "the origin serves the consumer around the downed replica"
    );
    assert_eq!(monitor.results(&late), monitor.results(&producer));
}

/// Regression: removing a subscriber that never took a replica reference
/// (it attached before the stream was published, so nothing could be
/// re-published on its behalf) must not retract a replica that a *later*
/// subscriber on the same peer legitimately backs.
#[test]
fn never_noted_subscriber_removal_does_not_retract_a_live_replica() {
    // Reuse off keeps both joiners' alerter sources as real Source tasks, so
    // the join — and with it the co-placed channel subscription — lands
    // deterministically on hub2.net for both of them (with reuse on, the
    // second joiner's alerter would be covered and the join could anchor
    // elsewhere).  Replica creation only needs `enable_replicas`.
    let mut monitor = Monitor::new(MonitorConfig {
        enable_reuse: false,
        ..MonitorConfig::default()
    });
    monitor.add_peer("backend.net");
    // A join over the published channel and a local alerter: the channel
    // subscription is co-placed with the join at hub2.net — remote from the
    // channel's origin.
    let joiner = r##"for $x in channel("#shared@mgr.org"),
            $c in outCOM(<p>hub2.net</p>)
        where $x.method = $c.callMethod
        return <pair m="{$c.callMethod}"/>
        by email "pair@example.org";"##;
    // Deployed BEFORE the producer: no definition exists yet, so this
    // subscriber is re-pointed later but never takes a replica reference.
    let early = monitor.submit("mgr.org", joiner).expect("early deploys");
    let producer = monitor
        .submit(
            "mgr.org",
            r#"for $c in outCOM(<p>hub.net</p>)
               where $c.callee = "http://backend.net"
               return <hit method="{$c.callMethod}"/>
               by publish as channel "shared";"#,
        )
        .expect("producer deploys");
    // Deployed AFTER the producer: this one re-publishes (hub.net, shared)
    // from hub2.net.
    let noted = monitor.submit("mgr.org", joiner).expect("noted deploys");
    assert_eq!(
        monitor
            .stream_db_mut()
            .replicas_of(ORIGIN, "shared")
            .iter()
            .filter(|r| r.replica_peer == "hub2.net")
            .count(),
        1,
        "the post-producer subscriber re-publishes the channel"
    );

    let inject = |monitor: &mut Monitor, base: u64| {
        for i in 0..6u64 {
            // Channel items out of hub.net, join partners out of hub2.net.
            monitor.inject_soap_call(&p2pmon_alerters::SoapCall::new(
                base + 2 * i,
                "http://hub.net",
                "http://backend.net",
                "Ping",
                1_000 + i,
                1_004 + i,
            ));
            monitor.inject_soap_call(&p2pmon_alerters::SoapCall::new(
                base + 2 * i + 1,
                "http://hub2.net",
                "http://backend.net",
                "Ping",
                1_000 + i,
                1_004 + i,
            ));
        }
        monitor.run_until_idle();
    };
    inject(&mut monitor, 0);
    let fed = monitor.results(&noted).len();
    assert!(
        fed > 0,
        "the join over the replicated channel produces pairs"
    );

    // The early (never-noted) subscriber leaves: the replica it never backed
    // must survive.
    assert!(monitor.unsubscribe(&early));
    assert_eq!(
        monitor
            .stream_db_mut()
            .replicas_of(ORIGIN, "shared")
            .iter()
            .filter(|r| r.replica_peer == "hub2.net")
            .count(),
        1,
        "removing a never-noted subscriber must not retract the live replica"
    );
    assert_eq!(monitor.replica_stats().replicas_retracted, 0);
    inject(&mut monitor, 100);
    assert!(
        monitor.results(&noted).len() > fed,
        "the noted subscriber keeps receiving"
    );

    // The real backer leaves: now the declaration goes.
    assert!(monitor.unsubscribe(&noted));
    assert!(monitor
        .stream_db_mut()
        .replicas_of(ORIGIN, "shared")
        .is_empty());
    assert_eq!(monitor.replica_stats().replicas_retracted, 1);
    let _ = producer;
}

/// Regression for the ROADMAP-noted orphan gap: when a replica is
/// retracted and another *surviving* replica of the same origin is closer
/// than the origin, orphaned subscribers re-attach to that copy instead of
/// all falling back to the far origin.  Re-attachment is cycle-free: the
/// first orphan (in deterministic order) re-anchors to the origin — its
/// own declaration cannot feed itself — and later orphans chain behind the
/// re-anchored one.
#[test]
fn orphans_reattach_to_the_closest_surviving_replica_not_the_origin() {
    let storm = OverlappingStorm::clustered(11, 1, 1, 4);
    let mut monitor = clustered_monitor(&storm, true, 1);
    let producer = monitor
        .submit("c0-peer0.org", &storm.subscription(0))
        .expect("producer deploys");
    // First remote consumer: pulls from the origin, re-publishes at peer1.
    let x1 = monitor
        .submit("c0-peer1.org", &storm.subscription(1))
        .expect("x1 deploys");
    // Both later consumers ride peer1's replica (5ms beats the 100ms hub)
    // and re-publish from their own peers.
    let x2 = monitor
        .submit("c0-peer2.org", &storm.subscription(2))
        .expect("x2 deploys");
    let x3 = monitor
        .submit("c0-peer3.org", &storm.subscription(3))
        .expect("x3 deploys");
    let origin = monitor
        .report(&x1)
        .expect("report")
        .reuse
        .reused_defs
        .first()
        .cloned()
        .expect("x1 reuses the producer's stream");
    assert_eq!(origin.0, ORIGIN);
    for handle in [&x2, &x3] {
        assert_eq!(
            monitor.subscribed_providers(handle)[0].0,
            "c0-peer1.org",
            "later consumers attach to the first replica"
        );
    }

    let mut traffic = storm.clone();
    for call in traffic.calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    let before = monitor.results(&x3).len();
    assert!(before > 0, "the replica chain feeds the last consumer");

    // peer1's only subscriber leaves: its declaration retracts and both
    // orphans must be re-homed.
    assert!(monitor.unsubscribe(&x1));
    let survivors: Vec<String> = monitor
        .stream_db_mut()
        .replicas_of(&origin.0, &origin.1)
        .iter()
        .map(|r| r.replica_peer.clone())
        .collect();
    assert!(
        survivors.contains(&"c0-peer2.org".to_string())
            && !survivors.contains(&"c0-peer1.org".to_string()),
        "peer1 retracted, peer2/peer3 survive: {survivors:?}"
    );
    // x2 re-anchors to the origin (every other replica is an orphan of the
    // same sweep at that point); x3 then rides x2's surviving replica — the
    // 5ms intra-cluster copy — NOT the 100ms origin.
    assert_eq!(monitor.subscribed_providers(&x2)[0], origin);
    let x3_provider = monitor.subscribed_providers(&x3)[0].clone();
    assert_eq!(
        x3_provider.0, "c0-peer2.org",
        "the orphan must re-attach to the closest surviving replica"
    );
    assert!(
        survivors.contains(&x3_provider.0),
        "the re-attachment target is a live declaration"
    );

    // The re-homed chain keeps delivering, byte-identically to the
    // producer's sink, and the forwarded hop rides the surviving replica.
    let forwarded_before = monitor
        .network_stats()
        .link("c0-peer2.org", "c0-peer3.org")
        .messages;
    for call in traffic.calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert!(
        monitor.results(&x3).len() > before,
        "the orphan keeps receiving through the surviving replica"
    );
    assert_eq!(monitor.results(&x3), monitor.results(&producer));
    assert!(
        monitor
            .network_stats()
            .link("c0-peer2.org", "c0-peer3.org")
            .messages
            > forwarded_before,
        "items reach the orphan via the surviving replica's forwarder"
    );
}

/// Orphan re-attachment skips surviving replicas whose peers are *down*:
/// with the nearest copy failed, the orphan goes to the origin even though
/// a declaration for the closer peer would still win on proximity alone.
#[test]
fn orphan_reattachment_skips_downed_replica_peers() {
    let storm = OverlappingStorm::clustered(13, 1, 1, 4);
    let mut monitor = clustered_monitor(&storm, true, 1);
    let producer = monitor
        .submit("c0-peer0.org", &storm.subscription(0))
        .expect("producer deploys");
    let x1 = monitor
        .submit("c0-peer1.org", &storm.subscription(1))
        .expect("x1 deploys");
    let x2 = monitor
        .submit("c0-peer2.org", &storm.subscription(2))
        .expect("x2 deploys");
    let x3 = monitor
        .submit("c0-peer3.org", &storm.subscription(3))
        .expect("x3 deploys");
    let origin = monitor
        .report(&x1)
        .expect("report")
        .reuse
        .reused_defs
        .first()
        .cloned()
        .expect("x1 reuses the producer's stream");

    // The peer that would become the surviving intra-cluster provider is
    // down when the retraction happens.
    monitor.fail_peer("c0-peer2.org");
    assert!(monitor.unsubscribe(&x1));
    assert_eq!(
        monitor.subscribed_providers(&x3)[0],
        origin,
        "a downed surviving replica is never selected for re-attachment"
    );
    monitor.recover_peer("c0-peer2.org");
    let mut traffic = storm.clone();
    for call in traffic.calls(40) {
        monitor.inject_soap_call(&call);
    }
    monitor.run_until_idle();
    assert_eq!(monitor.results(&x3), monitor.results(&producer));
    let _ = x2;
}

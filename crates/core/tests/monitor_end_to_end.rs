//! End-to-end Monitor behaviour (formerly `monitor.rs` unit tests, kept as
//! integration tests of the façade's public API after the PeerHost
//! decomposition).

use p2pmon_alerters::SoapCall;
use p2pmon_core::{Monitor, MonitorConfig, PlacementStrategy};
use p2pmon_p2pml::METEO_SUBSCRIPTION;
use p2pmon_streams::ops::Window;
use p2pmon_xmlkit::parse;

fn meteo_monitor(placement: PlacementStrategy, enable_reuse: bool) -> Monitor {
    let mut monitor = Monitor::new(MonitorConfig {
        placement,
        enable_reuse,
        ..MonitorConfig::default()
    });
    for peer in ["p", "a.com", "b.com", "meteo.com"] {
        monitor.add_peer(peer);
    }
    monitor
}

fn slow_call(id: u64, caller: &str) -> SoapCall {
    SoapCall::new(
        id,
        caller,
        "http://meteo.com",
        "GetTemperature",
        1_000,
        1_020,
    )
}

fn fast_call(id: u64, caller: &str) -> SoapCall {
    SoapCall::new(
        id,
        caller,
        "http://meteo.com",
        "GetTemperature",
        1_000,
        1_003,
    )
}

#[test]
fn meteo_subscription_detects_only_slow_answers() {
    let mut monitor = meteo_monitor(PlacementStrategy::PushToSources, true);
    let handle = monitor.submit("p", METEO_SUBSCRIPTION).unwrap();
    monitor.inject_soap_call(&slow_call(1, "http://a.com"));
    monitor.inject_soap_call(&fast_call(2, "http://a.com"));
    monitor.inject_soap_call(&slow_call(3, "http://b.com"));
    monitor.inject_soap_call(&slow_call(4, "http://other.com")); // unmonitored caller
    monitor.run_until_idle();
    let results = monitor.results(&handle);
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| r.attr("type") == Some("slowAnswer")));
    // The published channel carries the same items.
    assert_eq!(monitor.published_channel("p", "alertQoS").len(), 2);
}

#[test]
fn centralized_and_pushdown_agree_on_results_but_not_on_traffic() {
    let mut results = Vec::new();
    let mut bytes = Vec::new();
    for placement in [
        PlacementStrategy::PushToSources,
        PlacementStrategy::Centralized,
    ] {
        let mut monitor = meteo_monitor(placement, false);
        let handle = monitor.submit("p", METEO_SUBSCRIPTION).unwrap();
        for i in 0..20u64 {
            if i % 4 == 0 {
                monitor.inject_soap_call(&slow_call(i, "http://a.com"));
            } else {
                monitor.inject_soap_call(&fast_call(i, "http://a.com"));
            }
            monitor.inject_soap_call(&fast_call(1000 + i, "http://b.com"));
        }
        monitor.run_until_idle();
        results.push(monitor.results(&handle).len());
        bytes.push(monitor.network_stats().total_bytes);
    }
    assert_eq!(results[0], results[1], "both plans find the same incidents");
    assert!(results[0] > 0);
    assert!(
        bytes[0] < bytes[1],
        "pushdown ({}) must move fewer bytes than centralized ({})",
        bytes[0],
        bytes[1]
    );
}

#[test]
fn second_identical_subscription_reuses_published_streams() {
    let mut monitor = meteo_monitor(PlacementStrategy::PushToSources, true);
    let first = monitor.submit("p", METEO_SUBSCRIPTION).unwrap();
    let second_manager = "observer.org";
    monitor.add_peer(second_manager);
    let second = monitor.submit(second_manager, METEO_SUBSCRIPTION).unwrap();

    let report_first = monitor.report(&first).unwrap();
    let report_second = monitor.report(&second).unwrap();
    assert_eq!(report_first.reuse.reused_nodes, 0);
    assert!(
        report_second.reuse.reused_nodes > 0,
        "the second subscription should reuse at least the alerter/filter streams"
    );
    assert!(report_second.tasks < report_first.tasks);

    // Both subscriptions still deliver the same incidents.
    monitor.inject_soap_call(&slow_call(1, "http://a.com"));
    monitor.run_until_idle();
    assert_eq!(monitor.results(&first).len(), 1);
    assert_eq!(monitor.results(&second).len(), 1);
}

#[test]
fn rss_subscription_routes_add_alerts_to_email_sink() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    monitor.add_peer("portal");
    monitor.add_peer("admin");
    let handle = monitor
        .submit(
            "admin",
            r#"for $e in rssFeed(<p>portal</p>)
               where $e.kind = "add"
               return <new entry="{$e.entry}"/>
               by email "ops@example.org";"#,
        )
        .unwrap();
    let v1 =
        parse("<rss><channel><item><guid>1</guid><title>a</title></item></channel></rss>").unwrap();
    let v2 = parse(
        "<rss><channel><item><guid>1</guid><title>a</title></item><item><guid>2</guid><title>b</title></item></channel></rss>",
    )
    .unwrap();
    monitor.inject_rss_snapshot("portal", "http://portal/feed", &v1);
    monitor.run_until_idle();
    monitor.inject_rss_snapshot("portal", "http://portal/feed", &v2);
    monitor.run_until_idle();
    // First snapshot: 1 add; second: 1 add — both pass the kind filter.
    assert_eq!(monitor.results(&handle).len(), 2);
    let rendered = monitor.sink(&handle).unwrap().render();
    assert!(rendered.contains("To: ops@example.org"));
}

#[test]
fn dynamic_membership_subscription_follows_joins_and_leaves() {
    let mut monitor = Monitor::new(MonitorConfig::default());
    for p in ["hub", "dht.example", "a.com", "b.com"] {
        monitor.add_peer(p);
    }
    let handle = monitor
        .submit(
            "hub",
            r#"for $j in areRegistered(<p>dht.example</p>), $c in inCOM($j)
               where $c.callMethod = "Query"
               return <q callee="{$c.callee}"/>
               by publish as channel "usage";"#,
        )
        .unwrap();
    // a.com joins; b.com never joins.
    monitor.inject_peer_join("dht.example", "a.com");
    monitor.run_until_idle();
    monitor.inject_soap_call(&SoapCall::new(1, "x.org", "a.com", "Query", 10, 12));
    monitor.inject_soap_call(&SoapCall::new(2, "x.org", "b.com", "Query", 10, 12));
    monitor.run_until_idle();
    assert_eq!(monitor.results(&handle).len(), 1);
    // After a.com leaves, its calls are no longer reported.
    monitor.inject_peer_leave("dht.example", "a.com");
    monitor.run_until_idle();
    monitor.inject_soap_call(&SoapCall::new(3, "x.org", "a.com", "Query", 20, 22));
    monitor.run_until_idle();
    assert_eq!(monitor.results(&handle).len(), 1);
}

#[test]
fn join_state_is_bounded_by_the_window() {
    let mut monitor = Monitor::new(MonitorConfig {
        join_window: Window::items(8),
        ..MonitorConfig::default()
    });
    for peer in ["p", "a.com", "b.com", "meteo.com"] {
        monitor.add_peer(peer);
    }
    let handle = monitor.submit("p", METEO_SUBSCRIPTION).unwrap();
    for i in 0..200u64 {
        monitor.inject_soap_call(&slow_call(i, "http://a.com"));
    }
    monitor.run_until_idle();
    assert!(monitor.state_bytes(&handle) > 0);
    assert!(
        monitor.state_bytes(&handle) < 100_000,
        "windowed join must not retain all 200 calls"
    );
}

#[test]
fn report_counts_tasks_and_edges() {
    let mut monitor = meteo_monitor(PlacementStrategy::PushToSources, true);
    let handle = monitor.submit("p", METEO_SUBSCRIPTION).unwrap();
    let report = monitor.report(&handle).unwrap();
    assert_eq!(report.manager, "p");
    assert!(report.tasks >= 7);
    assert!(report.cross_peer_edges >= 2);
    assert_eq!(report.results_delivered, 0);
    assert_eq!(monitor.subscription_count(), 1);
    assert!(
        !report.filter_stats.is_empty(),
        "select tasks register with their host peers' engines"
    );
}

#[test]
fn engine_dispatch_is_on_the_meteo_hot_path() {
    let mut monitor = meteo_monitor(PlacementStrategy::PushToSources, true);
    let handle = monitor.submit("p", METEO_SUBSCRIPTION).unwrap();
    monitor.inject_soap_call(&slow_call(1, "http://a.com"));
    monitor.inject_soap_call(&fast_call(2, "http://b.com"));
    monitor.run_until_idle();
    assert_eq!(monitor.results(&handle).len(), 1);
    let stats = monitor.dispatch_stats();
    assert!(
        stats.engine_documents > 0,
        "alerts must flow through the shared engines: {stats:?}"
    );
    assert!(monitor.filter_stats().documents > 0);
}

//! YFilterσ: a shared NFA over linear path queries.
//!
//! YFilter (Diao, Fischer, Franklin, To — ICDE 2002) indexes a large set of
//! path queries in a single non-deterministic automaton that shares the
//! common *prefixes* of the queries: `/a/b/c` and `/a/b/d` share the states
//! for `/a/b`.  Matching a document costs one traversal of the document with
//! a set of active states, independent of how many queries share each prefix.
//!
//! The variant used by P2P Monitor, YFilterσ, is additionally *pruned per
//! document*: only the subscriptions whose simple conditions passed the AES
//! stage are of interest, so accepts for other queries are suppressed (and
//! when the active set is tiny, the engine skips the automaton entirely and
//! evaluates the few patterns directly — see `FilterEngine`).
//!
//! Differences from the original YFilter, documented for reviewers:
//!
//! * value predicates on a step are part of the transition (two queries share
//!   a prefix only when both the name tests *and* the predicates coincide);
//!   this keeps matching exact at a small cost in sharing;
//! * `//` is implemented with explicit self-loop states reached by an
//!   ε-closure, the standard NFA encoding.
//!
//! Hot-path engineering: transition tables are keyed by interned QName
//! [`Symbol`]s (hashed once per *element*, not once per active state), with a
//! Fibonacci-multiply hasher — the per-state lookup is integer arithmetic,
//! never a string comparison.  The per-document accept pruning takes a
//! *sorted* allowed list and binary-searches it, so pruned matching costs
//! `O(accepts · log |active|)` instead of the former linear scan.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use p2pmon_xmlkit::intern::{intern, Symbol};
use p2pmon_xmlkit::path::{Axis, NameTest};
use p2pmon_xmlkit::pattern::{PathPattern, ValuePredicate};
use p2pmon_xmlkit::Element;

/// Index of a registered query.
pub type QueryIdx = usize;

/// A Fibonacci-multiply hasher for interned symbols: symbol ids are small and
/// dense, so multiplying by the 64-bit golden-ratio constant spreads them
/// over the table bits far more cheaply than SipHash.
#[derive(Default)]
pub struct SymbolHasher(u64);

impl Hasher for SymbolHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only used via write_u32 on symbol ids; fold arbitrary bytes anyway
        // so the hasher stays correct for any key type.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, n: u32) {
        self.0 = u64::from(n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SymbolMap<V> = HashMap<Symbol, V, BuildHasherDefault<SymbolHasher>>;

/// A transition of the NFA.
#[derive(Debug, Clone)]
struct Transition {
    predicate: Option<ValuePredicate>,
    target: usize,
}

/// One NFA state.
#[derive(Debug, Clone, Default)]
struct State {
    /// Transitions indexed by the interned symbol of the element name.
    by_name: SymbolMap<Vec<Transition>>,
    /// Wildcard (`*`) transitions.
    wildcard: Vec<Transition>,
    /// ε-successor implementing the descendant axis: a state with
    /// `self_loop = true` from which the next step's transition departs.
    descendant: Option<usize>,
    /// True for `//`-states: the state stays active for every descendant.
    self_loop: bool,
    /// Queries accepted when this state is reached.
    accepts: Vec<QueryIdx>,
}

/// The shared path-query automaton.
#[derive(Debug, Clone)]
pub struct YFilter {
    states: Vec<State>,
    queries: Vec<PathPattern>,
    /// Number of state-set expansions performed, a work measure for E4.
    pub expansions: u64,
}

impl Default for YFilter {
    fn default() -> Self {
        YFilter::new()
    }
}

impl YFilter {
    /// Creates an empty automaton (state 0 is the start state).
    pub fn new() -> Self {
        YFilter {
            states: vec![State::default()],
            queries: Vec::new(),
            expansions: 0,
        }
    }

    /// Builds an automaton over a set of patterns.
    pub fn from_patterns(patterns: impl IntoIterator<Item = PathPattern>) -> Self {
        let mut yf = YFilter::new();
        for p in patterns {
            yf.add(p);
        }
        yf
    }

    /// Number of registered queries.
    pub fn query_count(&self) -> usize {
        self.queries.len()
    }

    /// Number of NFA states — the sharing measure: with heavily overlapping
    /// queries this grows much more slowly than the total number of steps.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The registered queries.
    pub fn queries(&self) -> &[PathPattern] {
        &self.queries
    }

    /// Registers a pattern and returns its query index.
    pub fn add(&mut self, pattern: PathPattern) -> QueryIdx {
        let idx = self.queries.len();
        let mut current = 0usize;
        for step in &pattern.steps {
            // Descendant axis: go through (or create) the self-loop state.
            if step.axis == Axis::Descendant {
                current = match self.states[current].descendant {
                    Some(d) => d,
                    None => {
                        let d = self.new_state(true);
                        self.states[current].descendant = Some(d);
                        d
                    }
                };
            }
            current = self.transition_target(current, &step.name, &step.predicate);
        }
        self.states[current].accepts.push(idx);
        self.queries.push(pattern);
        idx
    }

    fn new_state(&mut self, self_loop: bool) -> usize {
        self.states.push(State {
            self_loop,
            ..State::default()
        });
        self.states.len() - 1
    }

    /// Finds or creates the transition for (name test, predicate) out of
    /// `from`, returning the target state.  Name tests are interned here, so
    /// every document name that could ever match is in the interner table.
    fn transition_target(
        &mut self,
        from: usize,
        name: &NameTest,
        predicate: &Option<ValuePredicate>,
    ) -> usize {
        // Look for an existing, shareable transition.
        let existing = match name {
            NameTest::Name(n) => {
                let sym = intern(n);
                self.states[from]
                    .by_name
                    .get(&sym)
                    .and_then(|ts| ts.iter().find(|t| &t.predicate == predicate))
                    .map(|t| t.target)
            }
            NameTest::Wildcard => self.states[from]
                .wildcard
                .iter()
                .find(|t| &t.predicate == predicate)
                .map(|t| t.target),
        };
        if let Some(target) = existing {
            return target;
        }
        let target = self.new_state(false);
        let transition = Transition {
            predicate: predicate.clone(),
            target,
        };
        match name {
            NameTest::Name(n) => self.states[from]
                .by_name
                .entry(intern(n))
                .or_default()
                .push(transition),
            NameTest::Wildcard => self.states[from].wildcard.push(transition),
        }
        target
    }

    /// ε-closure: a state plus its descendant self-loop state.
    fn close_into(&self, state: usize, set: &mut Vec<usize>) {
        if !set.contains(&state) {
            set.push(state);
        }
        if let Some(d) = self.states[state].descendant {
            if !set.contains(&d) {
                set.push(d);
            }
        }
    }

    /// Matches a document against every registered query; returns the sorted,
    /// deduplicated indices of matching queries.
    pub fn matching_queries(&mut self, document: &Element) -> Vec<QueryIdx> {
        self.matching_queries_filtered(document, None)
    }

    /// Matches a document, reporting only queries present in `allowed` (the
    /// per-document pruning of YFilterσ).  `None` means "all".  The allowed
    /// list must be **sorted ascending** — it is binary-searched per accept.
    pub fn matching_queries_filtered(
        &mut self,
        document: &Element,
        allowed: Option<&[QueryIdx]>,
    ) -> Vec<QueryIdx> {
        debug_assert!(
            allowed.is_none_or(|list| list.windows(2).all(|w| w[0] < w[1])),
            "allowed query list must be sorted and deduplicated"
        );
        let mut initial = Vec::new();
        self.close_into(0, &mut initial);
        let mut matches = Vec::new();
        self.visit(document, &initial, allowed, &mut matches);
        matches.sort_unstable();
        matches.dedup();
        matches
    }

    fn visit(
        &mut self,
        element: &Element,
        active: &[usize],
        allowed: Option<&[QueryIdx]>,
        matches: &mut Vec<QueryIdx>,
    ) {
        // Compute the successor state set for this element.  The element's
        // name is resolved to a symbol ONCE; a lookup miss proves no name
        // test anywhere mentions this name (pattern compilation interns every
        // name test), so only wildcard transitions can apply.
        self.expansions += 1;
        let name_sym = element.name_symbol();
        let mut next: Vec<usize> = Vec::new();
        for &s in active {
            let state = &self.states[s];
            if state.self_loop {
                // `//` state stays active below this element.
                if !next.contains(&s) {
                    next.push(s);
                }
            }
            let follow = |transitions: &[Transition], next: &mut Vec<usize>| {
                for t in transitions {
                    let pred_ok = t
                        .predicate
                        .as_ref()
                        .map(|p| p.eval(element))
                        .unwrap_or(true);
                    if pred_ok && !next.contains(&t.target) {
                        next.push(t.target);
                    }
                }
            };
            if let Some(ts) = name_sym.and_then(|sym| state.by_name.get(&sym)) {
                follow(ts, &mut next);
            }
            follow(&state.wildcard, &mut next);
        }
        // ε-closure of the successor set and accept collection.
        let mut closed = Vec::with_capacity(next.len() * 2);
        for s in next {
            self.close_into(s, &mut closed);
        }
        for &s in &closed {
            for &q in &self.states[s].accepts {
                let keep = match allowed {
                    Some(list) => list.binary_search(&q).is_ok(),
                    None => true,
                };
                if keep {
                    matches.push(q);
                }
            }
        }
        if closed.is_empty() {
            return;
        }
        for child in element.child_elements() {
            self.visit(child, &closed, allowed, matches);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_xmlkit::parse;

    fn build(queries: &[&str]) -> YFilter {
        YFilter::from_patterns(queries.iter().map(|q| PathPattern::parse(q).unwrap()))
    }

    #[test]
    fn absolute_and_descendant_queries() {
        let mut yf = build(&["/rss/channel/item", "//item/title", "/rss/missing"]);
        let doc = parse("<rss><channel><item><title>x</title></item></channel></rss>").unwrap();
        assert_eq!(yf.matching_queries(&doc), vec![0, 1]);
    }

    #[test]
    fn wildcard_queries() {
        let mut yf = build(&["/a/*/c", "/a/b/*"]);
        let doc = parse("<a><b><c/></b></a>").unwrap();
        assert_eq!(yf.matching_queries(&doc), vec![0, 1]);
        let doc2 = parse("<a><b><d/></b></a>").unwrap();
        assert_eq!(yf.matching_queries(&doc2), vec![1]);
    }

    #[test]
    fn predicates_on_steps() {
        let mut yf = build(&[
            r#"//alert[@method="GetTemperature"]"#,
            r#"//alert[@method="GetHumidity"]"#,
            "//alert",
        ]);
        let doc = parse(r#"<root><alert method="GetTemperature"/></root>"#).unwrap();
        assert_eq!(yf.matching_queries(&doc), vec![0, 2]);
    }

    #[test]
    fn double_descendant_and_deep_nesting() {
        let mut yf = build(&["//b//d", "//d//b"]);
        let doc = parse("<a><b><c><d/></c></b></a>").unwrap();
        assert_eq!(yf.matching_queries(&doc), vec![0]);
    }

    #[test]
    fn root_element_is_matchable_by_first_step() {
        let mut yf = build(&["/alert/body", "//alert"]);
        let doc = parse("<alert><body/></alert>").unwrap();
        assert_eq!(yf.matching_queries(&doc), vec![0, 1]);
    }

    #[test]
    fn prefix_sharing_reduces_state_count() {
        // 100 queries /a/b/c0 .. /a/b/c99 share the /a/b prefix: expect about
        // 2 shared states + 100 leaf states rather than 300 states.
        let queries: Vec<String> = (0..100).map(|i| format!("/a/b/c{i}")).collect();
        let yf = YFilter::from_patterns(queries.iter().map(|q| PathPattern::parse(q).unwrap()));
        assert_eq!(yf.query_count(), 100);
        assert!(
            yf.state_count() <= 103,
            "expected prefix sharing, got {} states",
            yf.state_count()
        );
    }

    #[test]
    fn filtered_matching_prunes_accepts() {
        let mut yf = build(&["//a", "//b", "//c"]);
        let doc = parse("<r><a/><b/><c/></r>").unwrap();
        assert_eq!(yf.matching_queries(&doc), vec![0, 1, 2]);
        assert_eq!(yf.matching_queries_filtered(&doc, Some(&[1])), vec![1]);
        assert!(yf.matching_queries_filtered(&doc, Some(&[])).is_empty());
    }

    #[test]
    fn unparsed_documents_with_uninterned_names_still_match_wildcards() {
        // Build a document programmatically (never through the tokenizer)
        // with a name no pattern mentions: name tests must not match it, but
        // wildcards must.
        let mut yf = build(&["/*/inner", "//inner"]);
        let mut root = Element::new("completely-uninterned-root-name");
        root.push_element(Element::new("inner"));
        assert_eq!(yf.matching_queries(&root), vec![0, 1]);
        let mut named = build(&["/completely-absent-name/x"]);
        assert!(named.matching_queries(&root).is_empty());
    }

    #[test]
    fn agrees_with_naive_pattern_matching() {
        let queries = [
            "/log/entry/error",
            "//error",
            "//entry[@level=\"warn\"]",
            "/log//message",
            "//entry/*",
            "/log/entry[@level=\"info\"]/message",
        ];
        let docs = [
            r#"<log><entry level="info"><message>ok</message></entry></log>"#,
            r#"<log><entry level="warn"><error>bad</error></entry></log>"#,
            r#"<log><other/></log>"#,
            r#"<audit><error/></audit>"#,
        ];
        let patterns: Vec<PathPattern> = queries
            .iter()
            .map(|q| PathPattern::parse(q).unwrap())
            .collect();
        let mut yf = YFilter::from_patterns(patterns.clone());
        for doc_src in docs {
            let doc = parse(doc_src).unwrap();
            let nfa: Vec<usize> = yf.matching_queries(&doc);
            let naive: Vec<usize> = patterns
                .iter()
                .enumerate()
                .filter(|(_, p)| p.matches(&doc))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(nfa, naive, "mismatch on {doc_src}");
        }
    }

    #[test]
    fn text_predicate() {
        let mut yf = build(&["//price[text() > 100]"]);
        let expensive = parse("<order><price>250</price></order>").unwrap();
        let cheap = parse("<order><price>50</price></order>").unwrap();
        assert_eq!(yf.matching_queries(&expensive), vec![0]);
        assert!(yf.matching_queries(&cheap).is_empty());
    }
}

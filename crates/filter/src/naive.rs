//! The naive baseline: evaluate every subscription in full on every document.
//!
//! This is what a system without the pre-filter / AES / YFilter organisation
//! would do, and it is the baseline of experiments E2–E4.  It is also the
//! ground truth the property tests compare [`crate::FilterEngine`] against.

use p2pmon_xmlkit::Element;

use crate::subscription::{FilterSubscription, SubscriptionId};

/// A filter that scans every subscription linearly.
#[derive(Debug, Clone, Default)]
pub struct NaiveFilter {
    subscriptions: Vec<FilterSubscription>,
    /// Total subscription evaluations performed.
    pub evaluations: u64,
}

impl NaiveFilter {
    /// Creates an empty naive filter.
    pub fn new() -> Self {
        NaiveFilter::default()
    }

    /// Builds a naive filter from subscriptions.
    pub fn from_subscriptions(subscriptions: impl IntoIterator<Item = FilterSubscription>) -> Self {
        NaiveFilter {
            subscriptions: subscriptions.into_iter().collect(),
            evaluations: 0,
        }
    }

    /// Registers a subscription.
    pub fn add(&mut self, subscription: FilterSubscription) {
        self.subscriptions.push(subscription);
    }

    /// Removes a subscription by id; returns `true` when it existed.
    pub fn remove(&mut self, id: SubscriptionId) -> bool {
        match self.subscriptions.iter().position(|s| s.id == id) {
            Some(pos) => {
                self.subscriptions.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subscriptions.len()
    }

    /// True when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Returns the ids of all subscriptions matching the document, in
    /// registration order.
    pub fn matching(&mut self, document: &Element) -> Vec<SubscriptionId> {
        self.evaluations += self.subscriptions.len() as u64;
        self.subscriptions
            .iter()
            .filter(|s| s.matches(document))
            .map(|s| s.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_streams::AttrCondition;
    use p2pmon_xmlkit::path::CompareOp;
    use p2pmon_xmlkit::{parse, PathPattern};

    #[test]
    fn scans_every_subscription() {
        let mut nf = NaiveFilter::new();
        nf.add(
            FilterSubscription::new(1).with_simple(vec![AttrCondition::new(
                "k",
                CompareOp::Eq,
                "a",
            )]),
        );
        nf.add(FilterSubscription::new(2).with_complex(vec![PathPattern::parse("//x").unwrap()]));
        nf.add(
            FilterSubscription::new(3).with_simple(vec![AttrCondition::new(
                "k",
                CompareOp::Eq,
                "b",
            )]),
        );
        let doc = parse(r#"<r k="a"><x/></r>"#).unwrap();
        let ids: Vec<u64> = nf.matching(&doc).iter().map(|s| s.0).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(nf.evaluations, 3);
        assert_eq!(nf.len(), 3);
    }
}

//! # p2pmon-filter
//!
//! The Filter stream processor of Section 4 — "whose performance is critical
//! for the usability of the system".  Given a very large set of
//! subscriptions `{Qᵢ}` and a high-rate stream of XML documents, it must
//! find, for every document `t`, the subscriptions that match it.
//!
//! Each subscription is a conjunction `Qᵢ = ∧ⱼ Cᵢⱼ (∧ Q'ᵢ)` of *simple
//! conditions* `Cᵢⱼ` on the root attributes and an optional *complex* part
//! `Q'ᵢ` (a linear tree-pattern query).  The filter exploits that split by
//! running three modules in sequence:
//!
//! 1. [`PreFilter`] — reads only the root tag and evaluates every registered
//!    simple condition, organised in a hash table keyed by attribute name.
//!    It outputs the ordered list of satisfied conditions.
//! 2. [`AesFilter`] — the Atomic Event Set hash-tree (Nguyen et al., SIGMOD
//!    2001): feeding the satisfied-condition sequence through the tree yields
//!    (i) the *simple* subscriptions that are fully matched and (ii) the
//!    *complex* subscriptions whose simple prefix is satisfied and whose
//!    tree-pattern part still has to be checked ("active" subscriptions).
//! 3. [`YFilter`] — an NFA over the tree-pattern parts (Diao et al., ICDE
//!    2002) that shares common path prefixes between queries.  For each
//!    document it is "virtually pruned" to the active subscriptions:
//!    [`FilterEngine`] either restricts the NFA's accept set or, when very
//!    few subscriptions are active, evaluates them directly.
//!
//! The combined pipeline is [`FilterEngine`].  [`NaiveFilter`] is the
//! baseline that evaluates every subscription from scratch on every
//! document; the benches of experiments E2–E4 compare the two, and the
//! property tests assert they always agree.
//!
//! ActiveXML-awareness: documents may carry unevaluated service-call (`sc`)
//! elements instead of a large payload.  [`FilterEngine::process_intensional`]
//! materialises those calls *only when* some active subscription still needs
//! the payload — the optimisation of the "Web service calls" paragraph of
//! Section 4 (experiment E5).

pub mod aes;
pub mod engine;
pub mod naive;
pub mod prefilter;
pub mod subscription;
pub mod yfilter;

pub use aes::AesFilter;
pub use engine::{
    BatchOutcome, CostModelConfig, EngineMode, FilterEngine, FilterOutcome, FilterStats,
};
pub use naive::NaiveFilter;
pub use prefilter::PreFilter;
pub use subscription::{FilterSubscription, SubscriptionId};
pub use yfilter::YFilter;

#[cfg(test)]
mod lib_tests {
    use super::*;
    use p2pmon_streams::AttrCondition;
    use p2pmon_xmlkit::path::CompareOp;
    use p2pmon_xmlkit::{parse, PathPattern};

    #[test]
    fn end_to_end_filtering_of_the_paper_example() {
        // Q4 = C1, C3, Q'4 ; Q5 = C1 — from the Section 4 walk-through.
        let mut engine = FilterEngine::new();
        let c1 = AttrCondition::new("attr1", CompareOp::Eq, "x");
        let c3 = AttrCondition::new("attr3", CompareOp::Eq, "z");
        engine.add(
            FilterSubscription::new(4)
                .with_simple(vec![c1.clone(), c3.clone()])
                .with_complex(vec![PathPattern::parse("//c/d").unwrap()]),
        );
        engine.add(FilterSubscription::new(5).with_simple(vec![c1.clone()]));

        let doc = parse(r#"<root attr1="x" attr3="z"><c><d>1</d></c></root>"#).unwrap();
        let outcome = engine.process(&doc);
        let mut ids: Vec<u64> = outcome.matched.iter().map(|s| s.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![4, 5]);
    }
}

//! The AESFilter: the Atomic Event Set hash-tree.
//!
//! The AES algorithm (Nguyen, Abiteboul, Cobena, Preda — SIGMOD 2001) assumes
//! a total order over the simple conditions.  Each subscription's simple
//! conditions, sorted in that order, form a *prefix path* inserted into a
//! hash-tree: the root hash-table `H` has one entry per condition that starts
//! some subscription; the entry for `Cᵢ₁` may point to a table `Hᵢ₁` holding
//! the conditions that follow `Cᵢ₁` in some subscription, and so on.  A cell
//! is *marked* with the subscriptions whose last simple condition it is.
//!
//! Matching feeds the ordered list of conditions satisfied by a document
//! through the tree: from every visited table, every satisfied condition that
//! has an entry is followed (the satisfied list is a super-sequence of the
//! subscription prefixes we are looking for).  Every marking encountered is a
//! subscription whose simple part is fully satisfied: if the subscription is
//! *simple* it is an immediate match, otherwise it becomes *active* and its
//! tree-pattern part still has to be checked by YFilterσ.
//!
//! As shown in \[15\], the cost of a match is governed by the number of
//! conditions the document satisfies (small) rather than by the number of
//! registered subscriptions (huge) — experiment E3 reproduces that claim
//! against a linear-scan baseline.

use std::collections::HashMap;

use crate::prefilter::ConditionId;
use crate::subscription::SubscriptionId;

/// One node of the hash-tree: a hash table from the next condition id to the
/// child node, plus the markings of subscriptions ending here.
#[derive(Debug, Clone, Default)]
struct HashTreeNode {
    children: HashMap<ConditionId, HashTreeNode>,
    /// Simple subscriptions whose (entire) condition set ends at this cell.
    matched_simple: Vec<SubscriptionId>,
    /// Complex subscriptions whose *simple prefix* ends at this cell.
    activated_complex: Vec<SubscriptionId>,
}

/// The result of feeding one document's satisfied conditions through the
/// hash-tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AesMatch {
    /// Simple subscriptions fully matched by the document.
    pub matched_simple: Vec<SubscriptionId>,
    /// Complex subscriptions whose simple conditions are all satisfied; their
    /// tree-pattern part must still be evaluated.
    pub active_complex: Vec<SubscriptionId>,
}

/// The AES hash-tree over the simple-condition prefixes of all subscriptions.
#[derive(Debug, Clone, Default)]
pub struct AesFilter {
    root: HashTreeNode,
    /// Number of registered subscription paths.
    registered: usize,
    /// Nodes visited by match calls (statistic for E3).
    pub nodes_visited: u64,
}

impl AesFilter {
    /// Creates an empty hash-tree.
    pub fn new() -> Self {
        AesFilter::default()
    }

    /// Number of subscriptions inserted.
    pub fn len(&self) -> usize {
        self.registered
    }

    /// True when no subscription has been inserted.
    pub fn is_empty(&self) -> bool {
        self.registered == 0
    }

    /// Inserts a subscription given its *sorted, deduplicated* simple
    /// condition ids.  `is_simple` tells whether the subscription has no
    /// complex part (so that a full prefix match is a final match).
    ///
    /// Subscriptions with an empty condition list are the caller's problem
    /// (the paper ignores them at this stage); inserting one marks the root.
    pub fn insert(&mut self, conditions: &[ConditionId], id: SubscriptionId, is_simple: bool) {
        debug_assert!(
            conditions.windows(2).all(|w| w[0] < w[1]),
            "conditions must be sorted and deduplicated"
        );
        let mut node = &mut self.root;
        for &cid in conditions {
            node = node.children.entry(cid).or_default();
        }
        if is_simple {
            node.matched_simple.push(id);
        } else {
            node.activated_complex.push(id);
        }
        self.registered += 1;
    }

    /// Removes a previously inserted subscription path, pruning hash-tree
    /// nodes that become empty so that [`AesFilter::node_count`] shrinks
    /// symmetrically with [`AesFilter::insert`].  Returns whether the
    /// marking was found.
    pub fn remove(
        &mut self,
        conditions: &[ConditionId],
        id: SubscriptionId,
        is_simple: bool,
    ) -> bool {
        fn rec(
            node: &mut HashTreeNode,
            conditions: &[ConditionId],
            id: SubscriptionId,
            is_simple: bool,
        ) -> bool {
            let Some((&first, rest)) = conditions.split_first() else {
                let list = if is_simple {
                    &mut node.matched_simple
                } else {
                    &mut node.activated_complex
                };
                return match list.iter().position(|&s| s == id) {
                    Some(pos) => {
                        list.remove(pos);
                        true
                    }
                    None => false,
                };
            };
            let Some(child) = node.children.get_mut(&first) else {
                return false;
            };
            let removed = rec(child, rest, id, is_simple);
            if removed
                && child.children.is_empty()
                && child.matched_simple.is_empty()
                && child.activated_complex.is_empty()
            {
                node.children.remove(&first);
            }
            removed
        }
        let removed = rec(&mut self.root, conditions, id, is_simple);
        if removed {
            self.registered -= 1;
        }
        removed
    }

    /// Total number of hash-tree nodes (root included), a measure of the
    /// sharing achieved between subscriptions.
    pub fn node_count(&self) -> usize {
        fn count(node: &HashTreeNode) -> usize {
            1 + node.children.values().map(count).sum::<usize>()
        }
        count(&self.root)
    }

    /// Feeds the **sorted** list of satisfied conditions through the tree.
    pub fn matches(&mut self, satisfied: &[ConditionId]) -> AesMatch {
        debug_assert!(
            satisfied.windows(2).all(|w| w[0] < w[1]),
            "satisfied conditions must be sorted and deduplicated"
        );
        let mut result = AesMatch::default();
        let mut visited = 0u64;
        Self::walk(&self.root, satisfied, &mut result, &mut visited);
        self.nodes_visited += visited;
        result
    }

    /// Read-only variant of [`AesFilter::matches`] (no statistics update).
    pub fn matches_readonly(&self, satisfied: &[ConditionId]) -> AesMatch {
        let mut result = AesMatch::default();
        let mut visited = 0u64;
        Self::walk(&self.root, satisfied, &mut result, &mut visited);
        result
    }

    fn walk(
        node: &HashTreeNode,
        satisfied: &[ConditionId],
        result: &mut AesMatch,
        visited: &mut u64,
    ) {
        *visited += 1;
        result
            .matched_simple
            .extend_from_slice(&node.matched_simple);
        result
            .active_complex
            .extend_from_slice(&node.activated_complex);
        if node.children.is_empty() {
            return;
        }
        // Subscription prefixes are ordered, so from this node we may follow
        // any satisfied condition that has an entry, continuing with the
        // *strictly later* satisfied conditions only.  Probe from whichever
        // side is smaller: a node deep in the tree usually has far fewer
        // children than the document has satisfied conditions.
        if node.children.len() < satisfied.len() {
            let mut candidates: Vec<(usize, &HashTreeNode)> = node
                .children
                .iter()
                .filter_map(|(cid, child)| satisfied.binary_search(cid).ok().map(|i| (i, child)))
                .collect();
            // Sort by position in the satisfied list so traversal order (and
            // thus result order) is identical to the satisfied-side loop.
            candidates.sort_unstable_by_key(|&(i, _)| i);
            for (i, child) in candidates {
                Self::walk(child, &satisfied[i + 1..], result, visited);
            }
        } else {
            for (i, &cid) in satisfied.iter().enumerate() {
                if let Some(child) = node.children.get(&cid) {
                    Self::walk(child, &satisfied[i + 1..], result, visited);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> SubscriptionId {
        SubscriptionId(n)
    }

    /// The example of Figure 6:
    /// Q1 = C1,C2,Q'1 ; Q2 = C1,C2,Q'2 ; Q3 = C3,Q'3 ; Q4 = C1,C3,Q'4 ;
    /// Q5 = C1 ; Q6 = C1,C2,C4,Q'6.   (Condition ids: C1=0, C2=1, C3=2, C4=3.)
    fn paper_tree() -> AesFilter {
        let mut aes = AesFilter::new();
        aes.insert(&[0, 1], sid(1), false);
        aes.insert(&[0, 1], sid(2), false);
        aes.insert(&[2], sid(3), false);
        aes.insert(&[0, 2], sid(4), false);
        aes.insert(&[0], sid(5), true);
        aes.insert(&[0, 1, 3], sid(6), false);
        aes
    }

    #[test]
    fn paper_walkthrough_c1_c3() {
        // "If we suppose t satisfies C1, C3 […] AESFilter will detect Q5 as a
        // matching simple subscription and Q4, Q3 as active complex
        // subscriptions."
        let mut aes = paper_tree();
        let m = aes.matches(&[0, 2]);
        assert_eq!(m.matched_simple, vec![sid(5)]);
        let mut active = m.active_complex.clone();
        active.sort();
        assert_eq!(active, vec![sid(3), sid(4)]);
    }

    #[test]
    fn all_conditions_satisfied_activates_everything() {
        let mut aes = paper_tree();
        let m = aes.matches(&[0, 1, 2, 3]);
        assert_eq!(m.matched_simple, vec![sid(5)]);
        let mut active = m.active_complex;
        active.sort();
        assert_eq!(
            active,
            vec![sid(1), sid(2), sid(3), sid(4), sid(6)],
            "every complex subscription's prefix is satisfied"
        );
    }

    #[test]
    fn nothing_satisfied_matches_nothing() {
        let mut aes = paper_tree();
        let m = aes.matches(&[]);
        assert!(m.matched_simple.is_empty());
        assert!(m.active_complex.is_empty());
    }

    #[test]
    fn prefix_must_be_complete() {
        let mut aes = paper_tree();
        // Only C2 satisfied: Q1/Q2 need C1 first, so nothing activates.
        let m = aes.matches(&[1]);
        assert!(m.matched_simple.is_empty());
        assert!(m.active_complex.is_empty());
        // C1, C4 — Q6 needs C2 in between, so it must NOT activate.
        let m = aes.matches(&[0, 3]);
        assert_eq!(m.matched_simple, vec![sid(5)]);
        assert!(m.active_complex.is_empty());
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let aes = paper_tree();
        // Paths: [0,1] (x2 marks), [2], [0,2], [0], [0,1,3]
        // Nodes: root, 0, 0-1, 0-1-3, 0-2, 2  => 6
        assert_eq!(aes.node_count(), 6);
        assert_eq!(aes.len(), 6);
    }

    #[test]
    fn duplicate_condition_sets_mark_same_cell() {
        let mut aes = AesFilter::new();
        aes.insert(&[1, 5], sid(10), true);
        aes.insert(&[1, 5], sid(11), true);
        let m = aes.matches(&[0, 1, 3, 5, 9]);
        let mut ids = m.matched_simple;
        ids.sort();
        assert_eq!(ids, vec![sid(10), sid(11)]);
    }

    #[test]
    fn empty_condition_subscription_marks_root() {
        let mut aes = AesFilter::new();
        aes.insert(&[], sid(1), false);
        let m = aes.matches(&[]);
        assert_eq!(m.active_complex, vec![sid(1)]);
    }

    #[test]
    fn readonly_agrees_with_mutating() {
        let mut aes = paper_tree();
        for satisfied in [vec![], vec![0], vec![0, 1], vec![0, 1, 2, 3], vec![2, 3]] {
            assert_eq!(aes.matches_readonly(&satisfied), aes.matches(&satisfied));
        }
    }

    #[test]
    fn remove_prunes_nodes_and_unmarks() {
        let mut aes = paper_tree();
        assert_eq!(aes.node_count(), 6);
        // Removing Q6 ([0,1,3]) prunes the 0-1-3 leaf but keeps 0-1 (still
        // marked by Q1/Q2).
        assert!(aes.remove(&[0, 1, 3], sid(6), false));
        assert_eq!(aes.node_count(), 5);
        assert_eq!(aes.len(), 5);
        // Removing a marking that is not there is a no-op.
        assert!(!aes.remove(&[0, 1, 3], sid(6), false));
        assert!(!aes.remove(&[0, 1], sid(1), true), "wrong kind");
        assert_eq!(aes.node_count(), 5);
        // Remove everything; the tree collapses back to the root.
        assert!(aes.remove(&[0, 1], sid(1), false));
        assert!(aes.remove(&[0, 1], sid(2), false));
        assert!(aes.remove(&[2], sid(3), false));
        assert!(aes.remove(&[0, 2], sid(4), false));
        assert!(aes.remove(&[0], sid(5), true));
        assert_eq!(aes.node_count(), 1);
        assert!(aes.is_empty());
        let m = aes.matches(&[0, 1, 2, 3]);
        assert!(m.matched_simple.is_empty() && m.active_complex.is_empty());
    }

    #[test]
    fn walk_direction_heuristic_gives_identical_results() {
        // A wide root (many children) forces the satisfied-side loop at the
        // root while deep nodes take the children-side loop; results must be
        // identical to the reference evaluation either way.
        let mut aes = AesFilter::new();
        for i in 0..40usize {
            aes.insert(&[i, 40, 41, 42], sid(i as u64), true);
        }
        let satisfied: Vec<usize> = (0..43).collect();
        let m = aes.matches(&satisfied);
        let mut ids = m.matched_simple;
        ids.sort();
        assert_eq!(ids, (0..40).map(sid).collect::<Vec<_>>());
    }

    #[test]
    fn visit_count_grows_with_satisfied_set_not_subscription_count() {
        // Insert many subscriptions over a large alphabet; a document
        // satisfying only 2 conditions visits only a handful of nodes.
        let mut aes = AesFilter::new();
        for i in 0..1000u64 {
            let c = (i as usize % 50) * 2;
            aes.insert(&[c, c + 1], sid(i), true);
        }
        aes.nodes_visited = 0;
        aes.matches(&[4, 5]);
        assert!(
            aes.nodes_visited <= 4,
            "visited {} nodes, expected a handful",
            aes.nodes_visited
        );
    }
}

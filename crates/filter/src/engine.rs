//! The combined Filter engine: preFilter → AESFilter → YFilterσ.
//!
//! Figure 5 of the paper: plain arrows are the per-document data flow through
//! the three modules; dotted arrows are the *offline adjustment* performed
//! when the subscription database changes.
//!
//! # Cost-adaptive dispatch
//!
//! The staged pipeline has a fixed per-document overhead (prefilter alphabet
//! scan, hash-tree walk, automaton set expansion) that only pays for itself
//! past a break-even number of subscriptions; below it, a memoized linear
//! scan is faster.  An engine created with [`FilterEngine::adaptive`] starts
//! in **naive** mode and tracks an online cost model: an EWMA of the measured
//! naive-scan cost (in deterministic work units, not wall-clock, so behaviour
//! is reproducible) against an estimate of what the staged pipeline would
//! cost given the current number of live conditions and patterns.  Past the
//! break-even margin it **promotes** itself: the staged structures are built
//! incrementally, a bounded chunk of subscriptions per processed document
//! (never a stall), while matching continues naively; when the build drains
//! the engine switches to **staged** mode and drops the scan tables.  When
//! `remove` shrinks the database below a hysteresis fraction of its size at
//! promotion time, the engine **demotes** back to naive mode.  Both paths
//! produce identical match sets — the naive scan is the equivalence oracle
//! for the staged pipeline (see `tests/prop_engine_vs_naive.rs`).
//!
//! Engines created with [`FilterEngine::new`] are non-adaptive and always
//! staged, preserving the original behaviour.

use std::collections::HashMap;

use p2pmon_activexml::sc::{materialize, ServiceCall};
use p2pmon_streams::AttrCondition;
use p2pmon_xmlkit::{Element, PathPattern, Value};

use crate::aes::AesFilter;
use crate::prefilter::{ConditionId, PreFilter};
use crate::subscription::{FilterSubscription, SubscriptionId};
use crate::yfilter::{QueryIdx, YFilter};

/// When at most this many complex subscriptions are active for a document,
/// the engine evaluates their patterns directly instead of running the shared
/// automaton — the "virtually pruned" YFilterσ of the paper degenerates to a
/// handful of direct checks, which is cheaper than touching the big NFA.
const DIRECT_EVALUATION_THRESHOLD: usize = 4;

/// Which matching strategy an engine is currently using.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// Memoized linear scan over the compiled subscriptions.
    Naive,
    /// Still matching naively while the staged structures are being built
    /// incrementally (a bounded chunk per processed document).
    Building,
    /// The full prefilter → AES → YFilterσ pipeline.
    Staged,
}

impl EngineMode {
    /// Short lowercase label, used by the bench trajectory.
    pub fn label(self) -> &'static str {
        match self {
            EngineMode::Naive => "naive",
            EngineMode::Building => "building",
            EngineMode::Staged => "staged",
        }
    }
}

impl std::fmt::Display for EngineMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Tunable constants of the adaptive cost model.  All costs are in abstract
/// *work units* (one simple-condition evaluation = 1.0), never wall-clock, so
/// promotion decisions are deterministic and testable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModelConfig {
    /// EWMA smoothing factor for the measured naive cost per document.
    pub ewma_alpha: f64,
    /// Documents observed in naive mode before promotion is considered.
    pub min_observations: u64,
    /// Subscriptions required before promotion is considered at all.
    pub min_subscriptions: usize,
    /// Promote when `naive_ewma > staged_estimate × promote_margin`.
    pub promote_margin: f64,
    /// Demote when `remove` shrinks the database below this fraction of its
    /// size at promotion time.
    pub demote_fraction: f64,
    /// Fixed per-document overhead of the staged pipeline, in work units.
    pub staged_base: f64,
    /// Estimated staged cost per live distinct simple condition.
    pub condition_unit: f64,
    /// Estimated staged cost per live distinct tree pattern.
    pub pattern_unit: f64,
    /// Subscriptions indexed per processed document while building.
    pub build_chunk: usize,
}

impl Default for CostModelConfig {
    fn default() -> Self {
        CostModelConfig {
            ewma_alpha: 0.2,
            min_observations: 8,
            min_subscriptions: 16,
            promote_margin: 1.25,
            demote_fraction: 0.5,
            staged_base: 32.0,
            condition_unit: 0.5,
            pattern_unit: 0.5,
            build_chunk: 512,
        }
    }
}

impl CostModelConfig {
    /// An eager configuration for tests: promotes after a single observed
    /// document with no margin and demotes as soon as any removal happens.
    pub fn aggressive() -> Self {
        CostModelConfig {
            ewma_alpha: 1.0,
            min_observations: 1,
            min_subscriptions: 1,
            promote_margin: 0.0,
            demote_fraction: 1.0,
            staged_base: 0.0,
            condition_unit: 0.0,
            pattern_unit: 0.0,
            build_chunk: 4,
        }
    }
}

/// Work-unit prices of the naive scan (see [`CostModelConfig`]): a memo hit
/// is an order of magnitude cheaper than re-evaluating a condition, and a
/// tree-pattern evaluation an order of magnitude dearer.
const COND_EVAL_COST: f64 = 1.0;
const MEMO_HIT_COST: f64 = 0.125;
const PATTERN_EVAL_COST: f64 = 8.0;

/// Aggregate statistics maintained by the engine (experiments E2–E5 read
/// these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Documents processed.
    pub documents: u64,
    /// Documents for which at least one subscription matched.
    pub documents_matched: u64,
    /// Complex subscriptions whose tree patterns were evaluated (either via
    /// the automaton or directly).
    pub complex_evaluations: u64,
    /// Documents that reached the complex stage at all.
    pub complex_stage_entered: u64,
    /// Service calls (`sc` elements) materialised.
    pub service_calls_made: u64,
    /// Service calls avoided because no active subscription needed the
    /// payload.
    pub service_calls_avoided: u64,
    /// Documents processed by the naive scan (naive or building mode).
    pub naive_documents: u64,
    /// Completed naive → staged promotions.
    pub promotions: u64,
    /// Staged → naive demotions (hysteresis on `remove`).
    pub demotions: u64,
}

impl FilterStats {
    /// Accumulates another stats block into this one (used to aggregate the
    /// per-peer engines of a distributed deployment).
    pub fn absorb(&mut self, other: &FilterStats) {
        self.documents += other.documents;
        self.documents_matched += other.documents_matched;
        self.complex_evaluations += other.complex_evaluations;
        self.complex_stage_entered += other.complex_stage_entered;
        self.service_calls_made += other.service_calls_made;
        self.service_calls_avoided += other.service_calls_avoided;
        self.naive_documents += other.naive_documents;
        self.promotions += other.promotions;
        self.demotions += other.demotions;
    }
}

/// The outcome of filtering one document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterOutcome {
    /// Subscriptions that matched, sorted by id.
    pub matched: Vec<SubscriptionId>,
    /// Complex subscriptions that were *active* after the AES stage (their
    /// simple prefix was satisfied), whether or not they finally matched.
    pub active_complex: Vec<SubscriptionId>,
}

/// The outcome of filtering a batch of documents
/// ([`FilterEngine::match_batch`]): one [`FilterOutcome`] per *unique*
/// document, with an index mapping every input document to its (possibly
/// shared) outcome — duplicates cost neither an engine pass nor a clone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutcome {
    /// One outcome per unique document, in first-seen order.  Its length is
    /// the number of engine passes the batch actually executed.
    pub outcomes: Vec<FilterOutcome>,
    /// For each input document, the index of its outcome in `outcomes`.
    pub index: Vec<usize>,
}

impl BatchOutcome {
    /// The outcome of input document `i`.
    pub fn outcome(&self, i: usize) -> &FilterOutcome {
        &self.outcomes[self.index[i]]
    }

    /// Number of engine passes the batch executed (unique documents).
    pub fn passes(&self) -> usize {
        self.outcomes.len()
    }
}

/// A subscription compiled for the naive scan: its conditions and patterns
/// are interned into shared tables so evaluations memoize across the many
/// subscriptions that reuse the same condition or pattern.
#[derive(Debug, Clone)]
struct CompiledSub {
    id: SubscriptionId,
    cond_ids: Vec<u32>,
    pattern_ids: Vec<u32>,
}

/// The memoized linear-scan tables of naive mode.  Conditions and patterns
/// are deduplicated by their canonical text; per-document memo slots are
/// stamped so clearing between documents is O(1).
#[derive(Debug, Clone, Default)]
struct NaiveTables {
    conds: Vec<AttrCondition>,
    /// The typed constant of each condition, parsed once at intern time
    /// (`AttrCondition::eval` would re-parse it per evaluation).
    cond_consts: Vec<Value>,
    cond_index: HashMap<String, u32>,
    cond_refs: Vec<u32>,
    cond_memo: Vec<(u64, bool)>,
    patterns: Vec<PathPattern>,
    pattern_index: HashMap<String, u32>,
    pattern_refs: Vec<u32>,
    pattern_memo: Vec<(u64, bool)>,
    subs: Vec<CompiledSub>,
    pos: HashMap<SubscriptionId, usize>,
    stamp: u64,
    /// Distinct conditions with at least one referencing subscription.
    live_conds: usize,
    /// Distinct patterns with at least one referencing subscription.
    live_patterns: usize,
}

/// Result of one naive pass over a document.
#[derive(Debug, Default)]
struct NaiveScan {
    matched: Vec<SubscriptionId>,
    active_complex: Vec<SubscriptionId>,
    work: f64,
}

impl NaiveTables {
    fn intern_cond(&mut self, cond: &AttrCondition) -> u32 {
        let key = cond.key();
        if let Some(&i) = self.cond_index.get(&key) {
            if self.cond_refs[i as usize] == 0 {
                self.live_conds += 1;
            }
            self.cond_refs[i as usize] += 1;
            return i;
        }
        let i = u32::try_from(self.conds.len()).expect("condition table overflow");
        self.cond_consts.push(Value::from_literal(&cond.constant));
        self.conds.push(cond.clone());
        self.cond_refs.push(1);
        self.cond_memo.push((0, false));
        self.cond_index.insert(key, i);
        self.live_conds += 1;
        i
    }

    fn intern_pattern(&mut self, pattern: &PathPattern) -> u32 {
        let key = pattern.to_string();
        if let Some(&i) = self.pattern_index.get(&key) {
            if self.pattern_refs[i as usize] == 0 {
                self.live_patterns += 1;
            }
            self.pattern_refs[i as usize] += 1;
            return i;
        }
        let i = u32::try_from(self.patterns.len()).expect("pattern table overflow");
        self.patterns.push(pattern.clone());
        self.pattern_refs.push(1);
        self.pattern_memo.push((0, false));
        self.pattern_index.insert(key, i);
        self.live_patterns += 1;
        i
    }

    fn compile(&mut self, sub: &FilterSubscription) {
        let cond_ids = sub.simple.iter().map(|c| self.intern_cond(c)).collect();
        let pattern_ids = sub.complex.iter().map(|p| self.intern_pattern(p)).collect();
        self.pos.insert(sub.id, self.subs.len());
        self.subs.push(CompiledSub {
            id: sub.id,
            cond_ids,
            pattern_ids,
        });
    }

    /// Drops a compiled subscription in O(|sub|); dead table entries keep
    /// their slot (the memo stamps make them free) and are resurrected if the
    /// same condition or pattern is registered again.
    fn drop_sub(&mut self, id: SubscriptionId) -> bool {
        let Some(pos) = self.pos.remove(&id) else {
            return false;
        };
        let cs = self.subs.swap_remove(pos);
        if pos < self.subs.len() {
            self.pos.insert(self.subs[pos].id, pos);
        }
        for &i in &cs.cond_ids {
            self.cond_refs[i as usize] -= 1;
            if self.cond_refs[i as usize] == 0 {
                self.live_conds -= 1;
            }
        }
        for &i in &cs.pattern_ids {
            self.pattern_refs[i as usize] -= 1;
            if self.pattern_refs[i as usize] == 0 {
                self.live_patterns -= 1;
            }
        }
        true
    }

    /// Typed root attributes, parsed once per document: every condition
    /// evaluation against the same document reuses them instead of re-finding
    /// and re-parsing the attribute (`AttrCondition::eval` does both per
    /// call — that repetition is most of the plain naive filter's cost).
    fn typed_root_attrs(document: &Element) -> Vec<(&str, Value)> {
        document
            .attributes
            .iter()
            .map(|(k, v)| (k.as_str(), Value::from_literal(v)))
            .collect()
    }

    fn eval_cond(&mut self, i: u32, root_attrs: &[(&str, Value)], work: &mut f64) -> bool {
        let i = i as usize;
        let (stamp, value) = self.cond_memo[i];
        if stamp == self.stamp {
            *work += MEMO_HIT_COST;
            return value;
        }
        let cond = &self.conds[i];
        let value = root_attrs
            .iter()
            .find(|(k, _)| *k == cond.attr)
            .map(|(_, v)| cond.op.apply(v, &self.cond_consts[i]))
            .unwrap_or(false);
        self.cond_memo[i] = (self.stamp, value);
        *work += COND_EVAL_COST;
        value
    }

    fn eval_pattern(&mut self, i: u32, document: &Element, work: &mut f64) -> bool {
        let i = i as usize;
        let (stamp, value) = self.pattern_memo[i];
        if stamp == self.stamp {
            *work += MEMO_HIT_COST;
            return value;
        }
        let value = self.patterns[i].matches(document);
        self.pattern_memo[i] = (self.stamp, value);
        *work += PATTERN_EVAL_COST;
        value
    }

    /// Whether all simple conditions of compiled sub `si` hold.
    fn simple_holds(&mut self, si: usize, root_attrs: &[(&str, Value)], work: &mut f64) -> bool {
        for k in 0..self.subs[si].cond_ids.len() {
            let cid = self.subs[si].cond_ids[k];
            if !self.eval_cond(cid, root_attrs, work) {
                return false;
            }
        }
        true
    }

    /// Whether all tree patterns of compiled sub `si` match.
    fn patterns_hold(&mut self, si: usize, document: &Element, work: &mut f64) -> bool {
        for k in 0..self.subs[si].pattern_ids.len() {
            let pid = self.subs[si].pattern_ids[k];
            if !self.eval_pattern(pid, document, work) {
                return false;
            }
        }
        true
    }

    /// One full pass: simple conditions then tree patterns, memoized.
    fn scan(&mut self, document: &Element) -> NaiveScan {
        self.stamp += 1;
        let root_attrs = Self::typed_root_attrs(document);
        let mut out = NaiveScan::default();
        for si in 0..self.subs.len() {
            if !self.simple_holds(si, &root_attrs, &mut out.work) {
                continue;
            }
            let id = self.subs[si].id;
            if self.subs[si].pattern_ids.is_empty() {
                out.matched.push(id);
                continue;
            }
            out.active_complex.push(id);
            if self.patterns_hold(si, document, &mut out.work) {
                out.matched.push(id);
            }
        }
        out
    }

    /// Simple-conditions-only pass (for intensional documents: patterns must
    /// not run before materialisation).  Active complex subs are returned for
    /// a later [`NaiveTables::confirm_patterns`] call.
    fn scan_simple(&mut self, document: &Element) -> NaiveScan {
        self.stamp += 1;
        let root_attrs = Self::typed_root_attrs(document);
        let mut out = NaiveScan::default();
        for si in 0..self.subs.len() {
            if !self.simple_holds(si, &root_attrs, &mut out.work) {
                continue;
            }
            let id = self.subs[si].id;
            if self.subs[si].pattern_ids.is_empty() {
                out.matched.push(id);
            } else {
                out.active_complex.push(id);
            }
        }
        out
    }

    /// Evaluates the patterns of the given (previously active) subs against a
    /// materialised document.
    fn confirm_patterns(
        &mut self,
        active: &[SubscriptionId],
        document: &Element,
        work: &mut f64,
    ) -> Vec<SubscriptionId> {
        self.stamp += 1; // the materialised document differs from the raw one
        let mut confirmed = Vec::new();
        for &id in active {
            let Some(&si) = self.pos.get(&id) else {
                continue;
            };
            if self.patterns_hold(si, document, work) {
                confirmed.push(id);
            }
        }
        confirmed
    }
}

/// Per-subscription bookkeeping of the staged structures, enabling O(|sub|)
/// removal from the AES hash-tree and allowed-list construction without
/// scanning the whole query table.
#[derive(Debug, Clone, Default)]
struct StagedSub {
    /// Sorted, deduplicated condition ids as inserted into the AES tree.
    condition_ids: Vec<ConditionId>,
    /// YFilter query indices owned by this subscription.
    queries: Vec<QueryIdx>,
}

/// The two-stage, many-subscription Filter.
///
/// # Example
///
/// Register a subscription and classify documents against the shared
/// database (one [`FilterEngine::process`] call serves *every*
/// registered subscription; [`FilterEngine::match_batch`] amortizes one
/// pass over a whole batch):
///
/// ```
/// use p2pmon_filter::{FilterEngine, FilterSubscription};
/// use p2pmon_streams::AttrCondition;
/// use p2pmon_xmlkit::{parse, path::CompareOp};
///
/// let mut engine = FilterEngine::adaptive();
/// engine.add(FilterSubscription::new(7).with_simple(vec![
///     AttrCondition::new("callMethod", CompareOp::Eq, "GetTemperature"),
/// ]));
///
/// let hit = parse(r#"<call callMethod="GetTemperature"/>"#).unwrap();
/// let miss = parse(r#"<call callMethod="Ping"/>"#).unwrap();
/// assert_eq!(engine.process(&hit).matched.len(), 1);
/// assert!(engine.process(&miss).matched.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct FilterEngine {
    subscriptions: HashMap<SubscriptionId, FilterSubscription>,
    prefilter: PreFilter,
    aes: AesFilter,
    yfilter: YFilter,
    /// Maps a YFilter query index to (subscription, index of the pattern
    /// within that subscription's complex part).
    query_owner: Vec<(SubscriptionId, usize)>,
    /// Per-subscription count of complex patterns (to know when all matched).
    complex_counts: HashMap<SubscriptionId, usize>,
    /// Subscriptions with no simple conditions: always active.
    always_active: Vec<SubscriptionId>,
    /// Staged bookkeeping per subscription (only while staged/building).
    staged_subs: HashMap<SubscriptionId, StagedSub>,
    /// Distinct prefilter conditions still referenced by some subscription
    /// (the alphabet itself is append-only; this is the live count).
    live_condition_refs: HashMap<ConditionId, u32>,
    /// Adaptive state.
    adaptive: bool,
    mode: EngineMode,
    cost: CostModelConfig,
    naive: NaiveTables,
    naive_ewma: f64,
    observations: u64,
    /// Subscriptions not yet indexed into the staged structures (building).
    pending_build: Vec<SubscriptionId>,
    /// Database size when promotion began (hysteresis reference).
    promoted_at_len: usize,
    /// Engine statistics.
    pub stats: FilterStats,
}

impl Default for FilterEngine {
    fn default() -> Self {
        FilterEngine::new()
    }
}

impl FilterEngine {
    /// Creates an empty, non-adaptive engine: always staged, the original
    /// behaviour.
    pub fn new() -> Self {
        FilterEngine {
            subscriptions: HashMap::new(),
            prefilter: PreFilter::new(),
            aes: AesFilter::new(),
            yfilter: YFilter::new(),
            query_owner: Vec::new(),
            complex_counts: HashMap::new(),
            always_active: Vec::new(),
            staged_subs: HashMap::new(),
            live_condition_refs: HashMap::new(),
            adaptive: false,
            mode: EngineMode::Staged,
            cost: CostModelConfig::default(),
            naive: NaiveTables::default(),
            naive_ewma: 0.0,
            observations: 0,
            pending_build: Vec::new(),
            promoted_at_len: 0,
            stats: FilterStats::default(),
        }
    }

    /// Creates an empty cost-adaptive engine: starts in naive mode and
    /// promotes/demotes itself based on the online cost model.
    pub fn adaptive() -> Self {
        FilterEngine::adaptive_with(CostModelConfig::default())
    }

    /// Creates an adaptive engine with explicit cost-model constants.
    pub fn adaptive_with(cost: CostModelConfig) -> Self {
        FilterEngine {
            adaptive: true,
            mode: EngineMode::Naive,
            cost,
            ..FilterEngine::new()
        }
    }

    /// Builds a (non-adaptive) engine from a set of subscriptions.
    pub fn from_subscriptions(subscriptions: impl IntoIterator<Item = FilterSubscription>) -> Self {
        let mut engine = FilterEngine::new();
        engine.add_all(subscriptions);
        engine
    }

    /// The strategy the engine is currently using.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Whether the engine adapts its strategy to measured cost.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subscriptions.len()
    }

    /// True when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Access to a registered subscription (e.g. to apply its template).
    pub fn subscription(&self, id: SubscriptionId) -> Option<&FilterSubscription> {
        self.subscriptions.get(&id)
    }

    /// Registers a subscription (offline adjustment).
    ///
    /// The adjustment is *incremental* in every mode: naive mode compiles the
    /// subscription into the scan tables, staged mode appends its conditions
    /// to the preFilter alphabet, inserts it into the AES hash-tree and adds
    /// its patterns to the shared automaton — nothing already indexed is
    /// rebuilt.  This is what makes deployment of the N-th subscription
    /// O(|subscription|) instead of O(N), so a peer can absorb hundreds of
    /// hosted subscriptions cheaply.  Re-adding an id replaces the old
    /// subscription (that path falls back to a rebuild).
    pub fn add(&mut self, subscription: FilterSubscription) {
        let id = subscription.id;
        if self.subscriptions.insert(id, subscription).is_some() {
            // Replacement: the old conditions/patterns must disappear.
            self.rebuild_for_mode();
            return;
        }
        match self.mode {
            EngineMode::Naive => self.naive.compile(&self.subscriptions[&id]),
            EngineMode::Building => {
                self.naive.compile(&self.subscriptions[&id]);
                self.pending_build.push(id);
            }
            EngineMode::Staged => self.index(id),
        }
    }

    /// Registers many subscriptions, rebuilding the structures once.
    pub fn add_all(&mut self, subscriptions: impl IntoIterator<Item = FilterSubscription>) {
        for s in subscriptions {
            self.subscriptions.insert(s.id, s);
        }
        self.rebuild_for_mode();
    }

    /// Removes a subscription; returns `true` when it existed.
    ///
    /// The staged structures shrink symmetrically: the AES path is pruned in
    /// O(|sub|) and, when the subscription owned patterns, the automaton is
    /// rebuilt from the survivors — so `aes_node_count` and
    /// `yfilter_state_count` never report stale structure (the adaptive cost
    /// model reads them).  An adaptive engine demotes to naive mode when the
    /// database falls below the hysteresis fraction of its promotion size.
    pub fn remove(&mut self, id: SubscriptionId) -> bool {
        let Some(sub) = self.subscriptions.remove(&id) else {
            return false;
        };
        match self.mode {
            EngineMode::Naive => {
                self.naive.drop_sub(id);
            }
            EngineMode::Building => {
                // Removal mid-build: abort back to naive (the partial staged
                // structures may already index the removed subscription).
                self.abort_build();
                self.naive.drop_sub(id);
            }
            EngineMode::Staged => {
                self.unindex(id, &sub);
                if self.adaptive
                    && self.len()
                        < (self.promoted_at_len as f64 * self.cost.demote_fraction) as usize
                {
                    self.demote();
                }
            }
        }
        true
    }

    /// Size of the AES hash-tree (number of nodes), exposed for E3.  Zero in
    /// naive mode — no staged structure exists, and the cost model must not
    /// see a stale size.
    pub fn aes_node_count(&self) -> usize {
        match self.mode {
            EngineMode::Naive => 0,
            _ => self.aes.node_count(),
        }
    }

    /// Number of YFilter NFA states, exposed for E4.  Zero in naive mode.
    pub fn yfilter_state_count(&self) -> usize {
        match self.mode {
            EngineMode::Naive => 0,
            _ => self.yfilter.state_count(),
        }
    }

    /// The staged-pipeline cost estimate of the adaptive model, in work
    /// units, given the current live condition/pattern population.
    pub fn staged_estimate(&self) -> f64 {
        let (conds, patterns) = match self.mode {
            EngineMode::Staged => {
                let patterns: usize = self.complex_counts.values().sum();
                (self.live_condition_refs.len(), patterns)
            }
            _ => (self.naive.live_conds, self.naive.live_patterns),
        };
        self.cost.staged_base
            + self.cost.condition_unit * conds as f64
            + self.cost.pattern_unit * patterns as f64
    }

    /// The measured naive-scan cost EWMA, in work units per document.
    pub fn naive_cost_ewma(&self) -> f64 {
        self.naive_ewma
    }

    /// Rebuilds the current mode's structures from the subscription
    /// database.  Building mode aborts to naive (the cost model will promote
    /// again if still warranted).
    fn rebuild_for_mode(&mut self) {
        match self.mode {
            EngineMode::Naive => self.rebuild_naive(),
            EngineMode::Building => {
                self.abort_build();
                self.rebuild_naive();
            }
            EngineMode::Staged => self.rebuild_staged(),
        }
    }

    fn sorted_ids(&self) -> Vec<SubscriptionId> {
        // Deterministic iteration order keeps benches reproducible.
        let mut ids: Vec<SubscriptionId> = self.subscriptions.keys().copied().collect();
        ids.sort();
        ids
    }

    fn rebuild_naive(&mut self) {
        self.naive = NaiveTables::default();
        for id in self.sorted_ids() {
            self.naive.compile(&self.subscriptions[&id]);
        }
    }

    /// Rebuilds the pre-filter alphabet, the AES hash-tree and the YFilter
    /// automaton from the current subscription database.
    fn rebuild_staged(&mut self) {
        self.prefilter = PreFilter::new();
        self.aes = AesFilter::new();
        self.yfilter = YFilter::new();
        self.query_owner.clear();
        self.complex_counts.clear();
        self.always_active.clear();
        self.staged_subs.clear();
        self.live_condition_refs.clear();
        for id in self.sorted_ids() {
            self.index(id);
        }
    }

    /// Indexes one registered subscription into the three stages (the shared
    /// step of [`FilterEngine::add`], the incremental build and the rebuild).
    fn index(&mut self, id: SubscriptionId) {
        let sub = &self.subscriptions[&id];
        let simple = sub.simple.clone();
        let complex = sub.complex.clone();
        let is_simple = sub.is_simple();
        let mut condition_ids: Vec<usize> =
            simple.iter().map(|c| self.prefilter.register(c)).collect();
        condition_ids.sort_unstable();
        condition_ids.dedup();
        for &cid in &condition_ids {
            *self.live_condition_refs.entry(cid).or_insert(0) += 1;
        }
        if condition_ids.is_empty() {
            self.always_active.push(id);
            // Simple subscriptions with no conditions at all match
            // everything; they are handled in `process`.
        } else {
            self.aes.insert(&condition_ids, id, is_simple);
        }
        let mut queries = Vec::with_capacity(complex.len());
        if !complex.is_empty() {
            self.complex_counts.insert(id, complex.len());
            for (pattern_idx, pattern) in complex.into_iter().enumerate() {
                let q = self.yfilter.add(pattern);
                debug_assert_eq!(q, self.query_owner.len());
                self.query_owner.push((id, pattern_idx));
                queries.push(q);
            }
        }
        self.staged_subs.insert(
            id,
            StagedSub {
                condition_ids,
                queries,
            },
        );
    }

    /// Removes one subscription from the staged structures: AES prune in
    /// O(|sub|), automaton rebuild only when the subscription owned patterns.
    fn unindex(&mut self, id: SubscriptionId, sub: &FilterSubscription) {
        let staged = self.staged_subs.remove(&id).unwrap_or_default();
        if staged.condition_ids.is_empty() {
            self.always_active.retain(|&a| a != id);
        } else {
            self.aes.remove(&staged.condition_ids, id, sub.is_simple());
        }
        for cid in &staged.condition_ids {
            if let Some(refs) = self.live_condition_refs.get_mut(cid) {
                *refs -= 1;
                if *refs == 0 {
                    self.live_condition_refs.remove(cid);
                }
            }
        }
        self.complex_counts.remove(&id);
        if !staged.queries.is_empty() {
            self.rebuild_yfilter();
        }
        // The prefilter alphabet is append-only; when dead conditions
        // dominate it the per-document satisfied() scan pays for structure
        // nobody references, so rebuild everything.
        if self.prefilter.alphabet_size() > 64
            && self.prefilter.alphabet_size() > 2 * self.live_condition_refs.len()
        {
            self.rebuild_staged();
        }
    }

    /// Rebuilds only the automaton (and the query ownership tables) from the
    /// surviving subscriptions — the AES tree and prefilter are untouched.
    fn rebuild_yfilter(&mut self) {
        self.yfilter = YFilter::new();
        self.query_owner.clear();
        for id in self.sorted_ids() {
            let sub = &self.subscriptions[&id];
            if sub.complex.is_empty() {
                continue;
            }
            let mut queries = Vec::with_capacity(sub.complex.len());
            for (pattern_idx, pattern) in sub.complex.iter().enumerate() {
                let q = self.yfilter.add(pattern.clone());
                debug_assert_eq!(q, self.query_owner.len());
                self.query_owner.push((id, pattern_idx));
                queries.push(q);
            }
            if let Some(staged) = self.staged_subs.get_mut(&id) {
                staged.queries = queries;
            }
        }
    }

    /// Starts the incremental naive → staged promotion.
    fn begin_promotion(&mut self) {
        self.mode = EngineMode::Building;
        self.promoted_at_len = self.len();
        self.pending_build = self.sorted_ids();
        self.pending_build.reverse(); // pop() builds in ascending id order
        self.prefilter = PreFilter::new();
        self.aes = AesFilter::new();
        self.yfilter = YFilter::new();
        self.query_owner.clear();
        self.complex_counts.clear();
        self.always_active.clear();
        self.staged_subs.clear();
        self.live_condition_refs.clear();
    }

    /// Indexes up to `build_chunk` pending subscriptions; finishes the
    /// promotion when the queue drains.
    fn build_step(&mut self) {
        for _ in 0..self.cost.build_chunk {
            let Some(id) = self.pending_build.pop() else {
                break;
            };
            self.index(id);
        }
        if self.pending_build.is_empty() {
            self.mode = EngineMode::Staged;
            self.stats.promotions += 1;
            self.naive = NaiveTables::default();
        }
    }

    /// Abandons a partial build (removal mid-build): clears the partial
    /// staged structures and returns to naive matching.
    fn abort_build(&mut self) {
        self.mode = EngineMode::Naive;
        self.pending_build.clear();
        self.prefilter = PreFilter::new();
        self.aes = AesFilter::new();
        self.yfilter = YFilter::new();
        self.query_owner.clear();
        self.complex_counts.clear();
        self.always_active.clear();
        self.staged_subs.clear();
        self.live_condition_refs.clear();
        self.observations = 0;
        self.naive_ewma = 0.0;
    }

    /// Staged → naive demotion: drops the staged structures and recompiles
    /// the (now small) database into the scan tables.
    fn demote(&mut self) {
        self.abort_build();
        self.rebuild_naive();
        self.stats.demotions += 1;
    }

    /// Feeds one measured naive-scan cost into the EWMA and promotes when the
    /// model says the staged pipeline would be cheaper by the margin.
    fn observe_naive_cost(&mut self, work: f64) {
        self.naive_ewma = if self.observations == 0 {
            work
        } else {
            self.cost.ewma_alpha * work + (1.0 - self.cost.ewma_alpha) * self.naive_ewma
        };
        self.observations += 1;
        if self.mode == EngineMode::Naive
            && self.observations >= self.cost.min_observations
            && self.len() >= self.cost.min_subscriptions
            && self.naive_ewma > self.staged_estimate() * self.cost.promote_margin
        {
            self.begin_promotion();
        }
    }

    /// Filters one (fully materialised) document.
    pub fn process(&mut self, document: &Element) -> FilterOutcome {
        self.stats.documents += 1;
        if self.mode == EngineMode::Building {
            self.build_step();
        }
        if self.mode == EngineMode::Staged {
            return self.process_staged(document);
        }
        self.process_naive(document)
    }

    fn process_naive(&mut self, document: &Element) -> FilterOutcome {
        self.stats.naive_documents += 1;
        let mut scan = self.naive.scan(document);
        if !scan.active_complex.is_empty() {
            self.stats.complex_stage_entered += 1;
            self.stats.complex_evaluations += scan.active_complex.len() as u64;
        }
        scan.matched.sort_unstable();
        scan.matched.dedup();
        scan.active_complex.sort_unstable();
        scan.active_complex.dedup();
        if !scan.matched.is_empty() {
            self.stats.documents_matched += 1;
        }
        let outcome = FilterOutcome {
            matched: scan.matched,
            active_complex: scan.active_complex,
        };
        if self.adaptive && self.mode == EngineMode::Naive {
            self.observe_naive_cost(scan.work);
        }
        outcome
    }

    fn process_staged(&mut self, document: &Element) -> FilterOutcome {
        // Stage 1: simple conditions on the root attributes.
        let satisfied = self.prefilter.satisfied(document);

        // Stage 2: AES hash-tree.
        let aes_match = self.aes.matches(&satisfied);
        let mut matched: Vec<SubscriptionId> = aes_match.matched_simple;
        let mut active: Vec<SubscriptionId> = aes_match.active_complex;

        // Subscriptions with no simple conditions are always active (or
        // always matched when they have no complex part either).
        for &id in &self.always_active {
            let sub = &self.subscriptions[&id];
            if sub.is_simple() {
                matched.push(id);
            } else {
                active.push(id);
            }
        }
        active.sort_unstable();
        active.dedup();

        // Stage 3: YFilterσ over the active complex subscriptions only.
        if !active.is_empty() {
            self.stats.complex_stage_entered += 1;
            self.stats.complex_evaluations += active.len() as u64;
            let confirmed = self.evaluate_complex(document, &active);
            matched.extend(confirmed);
        }

        matched.sort_unstable();
        matched.dedup();
        if !matched.is_empty() {
            self.stats.documents_matched += 1;
        }
        FilterOutcome {
            matched,
            active_complex: active,
        }
    }

    /// Evaluates the tree-pattern parts of the active subscriptions, either
    /// directly (few active) or through the pruned automaton (many active).
    fn evaluate_complex(
        &mut self,
        document: &Element,
        active: &[SubscriptionId],
    ) -> Vec<SubscriptionId> {
        if active.len() <= DIRECT_EVALUATION_THRESHOLD {
            let mut confirmed = Vec::new();
            for &id in active {
                let sub = &self.subscriptions[&id];
                if sub.complex.iter().all(|p| p.matches(document)) {
                    confirmed.push(id);
                }
            }
            return confirmed;
        }
        // Restrict the automaton's accepts to the queries owned by active
        // subscriptions.  Each subscription knows its own query indices, so
        // this is O(active · patterns-per-sub), not a scan of every
        // registered query.
        let mut allowed: Vec<QueryIdx> = active
            .iter()
            .filter_map(|id| self.staged_subs.get(id))
            .flat_map(|s| s.queries.iter().copied())
            .collect();
        allowed.sort_unstable();
        let matched_queries = self
            .yfilter
            .matching_queries_filtered(document, Some(&allowed));
        // A subscription is confirmed when *all* of its patterns matched.
        let mut per_subscription: HashMap<SubscriptionId, usize> = HashMap::new();
        for q in matched_queries {
            let (owner, _) = self.query_owner[q];
            *per_subscription.entry(owner).or_insert(0) += 1;
        }
        per_subscription
            .into_iter()
            .filter(|(id, n)| self.complex_counts.get(id) == Some(n))
            .map(|(id, _)| id)
            .collect()
    }

    /// Filters a batch of documents, running the three stages once per
    /// *distinct* document: identical documents share a single pass, which is
    /// what amortizes per-tick batched alert dispatch — a peer whose inbox
    /// holds the same alert for many subscriptions pays for one engine
    /// evaluation.  Duplicates are detected by hashing the trees directly
    /// (no serialization) and share their outcome by index instead of cloning
    /// it; read per-input results through [`BatchOutcome::outcome`].
    pub fn match_batch(&mut self, docs: &[&Element]) -> BatchOutcome {
        let mut outcomes: Vec<FilterOutcome> = Vec::new();
        let mut index: Vec<usize> = Vec::with_capacity(docs.len());
        let mut first_seen: HashMap<&Element, usize> = HashMap::new();
        for doc in docs {
            match first_seen.get(doc).copied() {
                Some(i) => index.push(i),
                None => {
                    first_seen.insert(doc, outcomes.len());
                    index.push(outcomes.len());
                    outcomes.push(self.process(doc));
                }
            }
        }
        BatchOutcome { outcomes, index }
    }

    /// Filters a document that may contain unevaluated service calls
    /// (`sc` elements).  `resolver` performs the remote call on demand.
    ///
    /// The optimisation of Section 4: the simple conditions are checked on
    /// the root attributes *before* any service call; if no complex
    /// subscription remains active, the (possibly expensive) call is avoided
    /// entirely.  Returns the outcome together with the number of calls made.
    /// The avoidance works in every engine mode.
    pub fn process_intensional(
        &mut self,
        document: &Element,
        resolver: &mut dyn FnMut(&ServiceCall) -> Result<Vec<Element>, String>,
    ) -> (FilterOutcome, usize) {
        let has_calls = ServiceCall::document_is_intensional(document);
        if !has_calls {
            return (self.process(document), 0);
        }
        self.stats.documents += 1;
        if self.mode == EngineMode::Building {
            self.build_step();
        }

        // Run the cheap simple-condition stage on the document as-is.
        let naive_mode = self.mode != EngineMode::Staged;
        let (mut matched, mut active, mut work) = if naive_mode {
            self.stats.naive_documents += 1;
            let scan = self.naive.scan_simple(document);
            (scan.matched, scan.active_complex, scan.work)
        } else {
            let satisfied = self.prefilter.satisfied(document);
            let aes_match = self.aes.matches(&satisfied);
            let mut matched = aes_match.matched_simple;
            let mut active = aes_match.active_complex;
            for &id in &self.always_active {
                let sub = &self.subscriptions[&id];
                if sub.is_simple() {
                    matched.push(id);
                } else {
                    active.push(id);
                }
            }
            (matched, active, 0.0)
        };
        active.sort_unstable();
        active.dedup();

        if active.is_empty() {
            // No complex subscription cares: the service call is avoided.
            let pending = ServiceCall::find_in(document).len();
            self.stats.service_calls_avoided += pending as u64;
            matched.sort_unstable();
            matched.dedup();
            if !matched.is_empty() {
                self.stats.documents_matched += 1;
            }
            if self.adaptive && self.mode == EngineMode::Naive {
                self.observe_naive_cost(work);
            }
            return (
                FilterOutcome {
                    matched,
                    active_complex: active,
                },
                0,
            );
        }

        // Some complex subscription is active: materialise and evaluate.
        let mut materialised = document.clone();
        let calls = materialize(&mut materialised, resolver).unwrap_or(0);
        self.stats.service_calls_made += calls as u64;
        self.stats.complex_stage_entered += 1;
        self.stats.complex_evaluations += active.len() as u64;
        let confirmed = if naive_mode {
            self.naive
                .confirm_patterns(&active, &materialised, &mut work)
        } else {
            self.evaluate_complex(&materialised, &active)
        };
        matched.extend(confirmed);
        matched.sort_unstable();
        matched.dedup();
        if !matched.is_empty() {
            self.stats.documents_matched += 1;
        }
        if self.adaptive && self.mode == EngineMode::Naive {
            self.observe_naive_cost(work);
        }
        (
            FilterOutcome {
                matched,
                active_complex: active,
            },
            calls,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_streams::AttrCondition;
    use p2pmon_xmlkit::path::CompareOp;
    use p2pmon_xmlkit::{parse, PathPattern};

    fn sub_simple(id: u64, attr: &str, value: &str) -> FilterSubscription {
        FilterSubscription::new(id).with_simple(vec![AttrCondition::new(
            attr,
            CompareOp::Eq,
            value,
        )])
    }

    fn sub_complex(id: u64, attr: &str, value: &str, pattern: &str) -> FilterSubscription {
        FilterSubscription::new(id)
            .with_simple(vec![AttrCondition::new(attr, CompareOp::Eq, value)])
            .with_complex(vec![PathPattern::parse(pattern).unwrap()])
    }

    #[test]
    fn simple_and_complex_subscriptions_match_correctly() {
        let mut engine = FilterEngine::new();
        engine.add(sub_simple(1, "kind", "rss"));
        engine.add(sub_complex(2, "kind", "rss", "//item/title"));
        engine.add(sub_complex(3, "kind", "rss", "//item/enclosure"));
        engine.add(sub_simple(4, "kind", "soap"));

        let doc = parse(r#"<alert kind="rss"><item><title>x</title></item></alert>"#).unwrap();
        let outcome = engine.process(&doc);
        assert_eq!(outcome.matched, vec![SubscriptionId(1), SubscriptionId(2)]);
        assert_eq!(
            outcome.active_complex,
            vec![SubscriptionId(2), SubscriptionId(3)]
        );
    }

    #[test]
    fn no_simple_condition_subscriptions_are_always_considered() {
        let mut engine = FilterEngine::new();
        engine.add(FilterSubscription::new(1)); // matches everything
        engine
            .add(FilterSubscription::new(2).with_complex(vec![PathPattern::parse("//x").unwrap()]));
        let doc = parse("<r><x/></r>").unwrap();
        assert_eq!(
            engine.process(&doc).matched,
            vec![SubscriptionId(1), SubscriptionId(2)]
        );
        let doc2 = parse("<r><y/></r>").unwrap();
        assert_eq!(engine.process(&doc2).matched, vec![SubscriptionId(1)]);
    }

    #[test]
    fn remove_subscription_takes_effect() {
        let mut engine = FilterEngine::new();
        engine.add(sub_simple(1, "a", "1"));
        engine.add(sub_simple(2, "a", "1"));
        let doc = parse(r#"<r a="1"/>"#).unwrap();
        assert_eq!(engine.process(&doc).matched.len(), 2);
        assert!(engine.remove(SubscriptionId(1)));
        assert!(!engine.remove(SubscriptionId(1)));
        assert_eq!(engine.process(&doc).matched, vec![SubscriptionId(2)]);
    }

    #[test]
    fn remove_shrinks_staged_structures() {
        // Regression: the cost model reads aes_node_count/yfilter_state_count,
        // so unsubscribing must shrink them, not leave stale structure.
        let mut engine = FilterEngine::new();
        for i in 0..10 {
            engine.add(sub_complex(
                i,
                "k",
                &format!("v{i}"),
                &format!("//a{i}/b{i}"),
            ));
        }
        let aes_before = engine.aes_node_count();
        let yf_before = engine.yfilter_state_count();
        for i in 5..10 {
            assert!(engine.remove(SubscriptionId(i)));
        }
        assert!(
            engine.aes_node_count() < aes_before,
            "AES tree must shrink: {} !< {}",
            engine.aes_node_count(),
            aes_before
        );
        assert!(
            engine.yfilter_state_count() < yf_before,
            "automaton must shrink: {} !< {}",
            engine.yfilter_state_count(),
            yf_before
        );
        // And matching still works for the survivors.
        let doc = parse(r#"<alert k="v2"><a2><b2/></a2></alert>"#).unwrap();
        assert_eq!(engine.process(&doc).matched, vec![SubscriptionId(2)]);
        let gone = parse(r#"<alert k="v7"><a7><b7/></a7></alert>"#).unwrap();
        assert!(engine.process(&gone).matched.is_empty());
    }

    #[test]
    fn subscription_with_multiple_patterns_needs_all_of_them() {
        let mut engine = FilterEngine::new();
        engine.add(
            FilterSubscription::new(9)
                .with_simple(vec![AttrCondition::new("k", CompareOp::Eq, "v")])
                .with_complex(vec![
                    PathPattern::parse("//a").unwrap(),
                    PathPattern::parse("//b").unwrap(),
                ]),
        );
        // Pad with enough other complex subscriptions to push the engine into
        // the shared-automaton path.
        for i in 10..20 {
            engine.add(sub_complex(i, "k", "v", "//zzz"));
        }
        let both = parse(r#"<r k="v"><a/><b/></r>"#).unwrap();
        let only_a = parse(r#"<r k="v"><a/></r>"#).unwrap();
        assert!(engine.process(&both).matched.contains(&SubscriptionId(9)));
        assert!(!engine.process(&only_a).matched.contains(&SubscriptionId(9)));
    }

    #[test]
    fn agrees_with_naive_filter_on_a_mixed_workload() {
        use crate::naive::NaiveFilter;
        let subs: Vec<FilterSubscription> = vec![
            sub_simple(1, "m", "GetTemperature"),
            sub_simple(2, "callee", "meteo.com"),
            sub_complex(3, "m", "GetTemperature", "//soap/body"),
            sub_complex(4, "m", "GetHumidity", "//soap/body"),
            FilterSubscription::new(5)
                .with_simple(vec![
                    AttrCondition::new("m", CompareOp::Eq, "GetTemperature"),
                    AttrCondition::new("callee", CompareOp::Eq, "meteo.com"),
                ])
                .with_complex(vec![PathPattern::parse("//city[text()=\"Orsay\"]").unwrap()]),
            FilterSubscription::new(6).with_simple(vec![AttrCondition::new(
                "dur",
                CompareOp::Gt,
                "10",
            )]),
        ];
        let mut engine = FilterEngine::from_subscriptions(subs.clone());
        let mut adaptive = FilterEngine::adaptive_with(CostModelConfig::aggressive());
        adaptive.add_all(subs.clone());
        let mut naive = NaiveFilter::from_subscriptions(subs);
        let docs = [
            r#"<alert m="GetTemperature" callee="meteo.com" dur="15"><soap><body><city>Orsay</city></body></soap></alert>"#,
            r#"<alert m="GetTemperature" callee="other.com" dur="5"><soap><body><city>Paris</city></body></soap></alert>"#,
            r#"<alert m="GetHumidity" callee="meteo.com"/>"#,
            r#"<alert/>"#,
        ];
        for d in docs {
            let doc = parse(d).unwrap();
            let mut a = engine.process(&doc).matched;
            let mut b = naive.matching(&doc);
            let mut c = adaptive.process(&doc).matched;
            a.sort();
            b.sort();
            c.sort();
            assert_eq!(a, b, "staged disagreement on {d}");
            assert_eq!(c, b, "adaptive disagreement on {d}");
        }
    }

    #[test]
    fn adaptive_engine_promotes_past_break_even() {
        let mut engine = FilterEngine::adaptive_with(CostModelConfig {
            min_observations: 2,
            min_subscriptions: 4,
            promote_margin: 1.0,
            staged_base: 0.0,
            condition_unit: 0.01,
            pattern_unit: 0.01,
            build_chunk: 3,
            ..CostModelConfig::default()
        });
        for i in 0..8 {
            engine.add(sub_simple(i, "k", &format!("v{}", i % 3)));
        }
        assert_eq!(engine.mode(), EngineMode::Naive);
        assert_eq!(engine.aes_node_count(), 0, "no staged structure yet");
        let doc = parse(r#"<r k="v1"/>"#).unwrap();
        // Two observations trip the model; the build takes ceil(8/3) = 3
        // chunked steps, during which matching continues (naively).
        let mut modes = Vec::new();
        for _ in 0..6 {
            let outcome = engine.process(&doc);
            assert!(!outcome.matched.is_empty());
            modes.push(engine.mode());
        }
        assert_eq!(engine.mode(), EngineMode::Staged);
        assert_eq!(engine.stats.promotions, 1);
        assert!(
            modes.contains(&EngineMode::Building),
            "promotion must be incremental, saw {modes:?}"
        );
        assert!(engine.aes_node_count() > 0);
        assert!(engine.stats.naive_documents >= 3);
    }

    #[test]
    fn adaptive_engine_demotes_on_remove_hysteresis() {
        let mut engine = FilterEngine::adaptive_with(CostModelConfig {
            min_observations: 1,
            min_subscriptions: 1,
            promote_margin: 0.0,
            staged_base: 0.0,
            condition_unit: 0.0,
            pattern_unit: 0.0,
            demote_fraction: 0.5,
            build_chunk: 100,
            ..CostModelConfig::default()
        });
        for i in 0..10 {
            engine.add(sub_simple(i, "k", &format!("v{i}")));
        }
        let doc = parse(r#"<r k="v0"/>"#).unwrap();
        engine.process(&doc); // promote
        engine.process(&doc); // finish build
        assert_eq!(engine.mode(), EngineMode::Staged);
        // Dropping to 5 subscriptions (not < 10·0.5) keeps the engine staged;
        // one more removal crosses the hysteresis.
        for i in 0..5 {
            engine.remove(SubscriptionId(i));
        }
        assert_eq!(engine.mode(), EngineMode::Staged);
        engine.remove(SubscriptionId(5));
        assert_eq!(engine.mode(), EngineMode::Naive);
        assert_eq!(engine.stats.demotions, 1);
        assert_eq!(engine.aes_node_count(), 0);
        // The demoted engine still matches correctly.
        let doc = parse(r#"<r k="v7"/>"#).unwrap();
        assert_eq!(engine.process(&doc).matched, vec![SubscriptionId(7)]);
    }

    #[test]
    fn removal_mid_build_aborts_cleanly() {
        let mut engine = FilterEngine::adaptive_with(CostModelConfig {
            min_observations: 1,
            min_subscriptions: 1,
            promote_margin: 0.0,
            staged_base: 0.0,
            condition_unit: 0.0,
            pattern_unit: 0.0,
            build_chunk: 2,
            ..CostModelConfig::default()
        });
        for i in 0..10 {
            engine.add(sub_simple(i, "k", &format!("v{i}")));
        }
        let doc = parse(r#"<r k="v3"/>"#).unwrap();
        engine.process(&doc); // promote: mode is now Building
        engine.process(&doc); // one chunk built
        assert_eq!(engine.mode(), EngineMode::Building);
        engine.remove(SubscriptionId(0));
        assert_eq!(engine.mode(), EngineMode::Naive);
        assert_eq!(engine.stats.promotions, 0, "aborted build is no promotion");
        assert_eq!(engine.process(&doc).matched, vec![SubscriptionId(3)]);
    }

    #[test]
    fn non_adaptive_engine_never_changes_mode() {
        let mut engine = FilterEngine::new();
        for i in 0..100 {
            engine.add(sub_simple(i, "k", &format!("v{i}")));
        }
        let doc = parse(r#"<r k="v1"/>"#).unwrap();
        for _ in 0..20 {
            engine.process(&doc);
        }
        assert_eq!(engine.mode(), EngineMode::Staged);
        assert_eq!(engine.stats.promotions, 0);
        assert_eq!(engine.stats.naive_documents, 0);
    }

    #[test]
    fn intensional_documents_avoid_service_calls_when_simple_conditions_fail() {
        let mut engine = FilterEngine::new();
        // The paper's example: attr1="x" and attr2="z" and //c/d.
        engine.add(
            FilterSubscription::new(1)
                .with_simple(vec![
                    AttrCondition::new("attr1", CompareOp::Eq, "x"),
                    AttrCondition::new("attr2", CompareOp::Eq, "z"),
                ])
                .with_complex(vec![PathPattern::parse("//c/d").unwrap()]),
        );
        let doc = parse(
            r#"<root attr1="x" attr2="y"><sc service="storage" address="site"><parameters/></sc></root>"#,
        )
        .unwrap();
        let mut calls = 0usize;
        let (outcome, made) = engine.process_intensional(&doc, &mut |_| {
            calls += 1;
            Ok(vec![parse("<c><d/></c>").unwrap()])
        });
        assert!(outcome.matched.is_empty());
        assert_eq!(made, 0, "attr2 failed, the storage call must be avoided");
        assert_eq!(calls, 0);
        assert_eq!(engine.stats.service_calls_avoided, 1);
    }

    #[test]
    fn intensional_avoidance_works_in_naive_mode_too() {
        let mut engine = FilterEngine::adaptive();
        engine.add(
            FilterSubscription::new(1)
                .with_simple(vec![AttrCondition::new("attr1", CompareOp::Eq, "x")])
                .with_complex(vec![PathPattern::parse("//c/d").unwrap()]),
        );
        assert_eq!(engine.mode(), EngineMode::Naive);
        let miss = parse(
            r#"<root attr1="no"><sc service="storage" address="site"><parameters/></sc></root>"#,
        )
        .unwrap();
        let (outcome, made) =
            engine.process_intensional(&miss, &mut |_| panic!("resolver must not be called"));
        assert!(outcome.matched.is_empty());
        assert_eq!(made, 0);
        assert_eq!(engine.stats.service_calls_avoided, 1);
        let hit = parse(
            r#"<root attr1="x"><sc service="storage" address="site"><parameters/></sc></root>"#,
        )
        .unwrap();
        let (outcome, made) =
            engine.process_intensional(&hit, &mut |_| Ok(vec![parse("<c><d/></c>").unwrap()]));
        assert_eq!(outcome.matched, vec![SubscriptionId(1)]);
        assert_eq!(made, 1);
    }

    #[test]
    fn intensional_documents_materialise_when_needed() {
        let mut engine = FilterEngine::new();
        engine.add(
            FilterSubscription::new(1)
                .with_simple(vec![AttrCondition::new("attr1", CompareOp::Eq, "x")])
                .with_complex(vec![PathPattern::parse("//c/d").unwrap()]),
        );
        let doc = parse(
            r#"<root attr1="x"><sc service="storage" address="site"><parameters/></sc></root>"#,
        )
        .unwrap();
        let (outcome, made) =
            engine.process_intensional(&doc, &mut |_| Ok(vec![parse("<c><d/></c>").unwrap()]));
        assert_eq!(outcome.matched, vec![SubscriptionId(1)]);
        assert_eq!(made, 1);
        assert_eq!(engine.stats.service_calls_made, 1);
    }

    #[test]
    fn incremental_add_agrees_with_bulk_construction() {
        // Interleave adds with processing: the incrementally grown engine
        // must agree with one built in bulk at every prefix.
        let subs: Vec<FilterSubscription> = (0..24)
            .map(|i| match i % 3 {
                0 => sub_simple(i, "m", &format!("v{}", i % 5)),
                1 => sub_complex(i, "m", &format!("v{}", i % 5), "//item/title"),
                _ => FilterSubscription::new(i)
                    .with_complex(vec![PathPattern::parse("//item/enclosure").unwrap()]),
            })
            .collect();
        let docs = [
            r#"<alert m="v0"><item><title>x</title></item></alert>"#,
            r#"<alert m="v1"><item><enclosure/></item></alert>"#,
            r#"<alert m="v4"/>"#,
        ];
        let mut incremental = FilterEngine::new();
        for (n, sub) in subs.iter().enumerate() {
            incremental.add(sub.clone());
            let mut bulk = FilterEngine::from_subscriptions(subs[..=n].to_vec());
            for d in &docs {
                let doc = parse(d).unwrap();
                assert_eq!(
                    incremental.process(&doc).matched,
                    bulk.process(&doc).matched,
                    "prefix {n} disagrees on {d}"
                );
            }
        }
        // Re-adding an existing id replaces it.
        incremental.add(sub_simple(0, "m", "other"));
        assert_eq!(incremental.len(), 24);
        let doc = parse(r#"<alert m="other"/>"#).unwrap();
        assert!(incremental
            .process(&doc)
            .matched
            .contains(&SubscriptionId(0)));
    }

    #[test]
    fn match_batch_deduplicates_identical_documents() {
        let mut engine = FilterEngine::new();
        engine.add(sub_simple(1, "kind", "rss"));
        engine.add(sub_complex(2, "kind", "rss", "//item/title"));
        let hit = parse(r#"<alert kind="rss"><item><title>x</title></item></alert>"#).unwrap();
        let hit_again =
            parse(r#"<alert kind="rss"><item><title>x</title></item></alert>"#).unwrap();
        let miss = parse(r#"<alert kind="soap"/>"#).unwrap();
        let batch = engine.match_batch(&[&hit, &miss, &hit_again, &hit]);
        assert_eq!(batch.passes(), 2, "identical documents share one pass");
        assert_eq!(engine.stats.documents, 2);
        assert_eq!(
            batch.outcome(0).matched,
            vec![SubscriptionId(1), SubscriptionId(2)]
        );
        assert!(batch.outcome(1).matched.is_empty());
        assert_eq!(batch.index, vec![0, 1, 0, 0], "duplicates share by index");
        assert_eq!(batch.outcome(2), batch.outcome(0));
        // The batched outcomes agree with one-at-a-time processing.
        let mut fresh = FilterEngine::new();
        fresh.add(sub_simple(1, "kind", "rss"));
        fresh.add(sub_complex(2, "kind", "rss", "//item/title"));
        for (i, doc) in [&hit, &miss, &hit_again].iter().enumerate() {
            assert_eq!(&fresh.process(doc), batch.outcome(i));
        }
    }

    #[test]
    fn stats_absorb_sums_counters() {
        let a = FilterStats {
            documents: 3,
            documents_matched: 2,
            complex_evaluations: 5,
            complex_stage_entered: 1,
            service_calls_made: 1,
            service_calls_avoided: 4,
            naive_documents: 2,
            promotions: 1,
            demotions: 1,
        };
        let mut b = a;
        b.absorb(&a);
        assert_eq!(b.documents, 6);
        assert_eq!(b.complex_evaluations, 10);
        assert_eq!(b.service_calls_avoided, 8);
        assert_eq!(b.naive_documents, 4);
        assert_eq!(b.promotions, 2);
        assert_eq!(b.demotions, 2);
    }

    #[test]
    fn stats_accumulate() {
        let mut engine = FilterEngine::new();
        engine.add(sub_simple(1, "a", "1"));
        engine.process(&parse(r#"<r a="1"/>"#).unwrap());
        engine.process(&parse(r#"<r a="2"/>"#).unwrap());
        assert_eq!(engine.stats.documents, 2);
        assert_eq!(engine.stats.documents_matched, 1);
    }
}

//! The combined Filter engine: preFilter → AESFilter → YFilterσ.
//!
//! Figure 5 of the paper: plain arrows are the per-document data flow through
//! the three modules; dotted arrows are the *offline adjustment* performed
//! when the subscription database changes — here, [`FilterEngine::add`] and
//! [`FilterEngine::remove`] rebuild the hash-tree and the automaton.

use std::collections::HashMap;

use p2pmon_activexml::sc::{materialize, ServiceCall};
use p2pmon_xmlkit::Element;

use crate::aes::AesFilter;
use crate::prefilter::PreFilter;
use crate::subscription::{FilterSubscription, SubscriptionId};
use crate::yfilter::{QueryIdx, YFilter};

/// When at most this many complex subscriptions are active for a document,
/// the engine evaluates their patterns directly instead of running the shared
/// automaton — the "virtually pruned" YFilterσ of the paper degenerates to a
/// handful of direct checks, which is cheaper than touching the big NFA.
const DIRECT_EVALUATION_THRESHOLD: usize = 4;

/// Aggregate statistics maintained by the engine (experiments E2–E5 read
/// these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Documents processed.
    pub documents: u64,
    /// Documents for which at least one subscription matched.
    pub documents_matched: u64,
    /// Complex subscriptions whose tree patterns were evaluated (either via
    /// the automaton or directly).
    pub complex_evaluations: u64,
    /// Documents that reached the complex stage at all.
    pub complex_stage_entered: u64,
    /// Service calls (`sc` elements) materialised.
    pub service_calls_made: u64,
    /// Service calls avoided because no active subscription needed the
    /// payload.
    pub service_calls_avoided: u64,
}

impl FilterStats {
    /// Accumulates another stats block into this one (used to aggregate the
    /// per-peer engines of a distributed deployment).
    pub fn absorb(&mut self, other: &FilterStats) {
        self.documents += other.documents;
        self.documents_matched += other.documents_matched;
        self.complex_evaluations += other.complex_evaluations;
        self.complex_stage_entered += other.complex_stage_entered;
        self.service_calls_made += other.service_calls_made;
        self.service_calls_avoided += other.service_calls_avoided;
    }
}

/// The outcome of filtering one document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FilterOutcome {
    /// Subscriptions that matched, sorted by id.
    pub matched: Vec<SubscriptionId>,
    /// Complex subscriptions that were *active* after the AES stage (their
    /// simple prefix was satisfied), whether or not they finally matched.
    pub active_complex: Vec<SubscriptionId>,
}

/// The outcome of filtering a batch of documents
/// ([`FilterEngine::match_batch`]): one [`FilterOutcome`] per *unique*
/// document, with an index mapping every input document to its (possibly
/// shared) outcome — duplicates cost neither an engine pass nor a clone.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchOutcome {
    /// One outcome per unique document, in first-seen order.  Its length is
    /// the number of engine passes the batch actually executed.
    pub outcomes: Vec<FilterOutcome>,
    /// For each input document, the index of its outcome in `outcomes`.
    pub index: Vec<usize>,
}

impl BatchOutcome {
    /// The outcome of input document `i`.
    pub fn outcome(&self, i: usize) -> &FilterOutcome {
        &self.outcomes[self.index[i]]
    }

    /// Number of engine passes the batch executed (unique documents).
    pub fn passes(&self) -> usize {
        self.outcomes.len()
    }
}

/// The two-stage, many-subscription Filter.
#[derive(Debug, Clone, Default)]
pub struct FilterEngine {
    subscriptions: HashMap<SubscriptionId, FilterSubscription>,
    prefilter: PreFilter,
    aes: AesFilter,
    yfilter: YFilter,
    /// Maps a YFilter query index to (subscription, index of the pattern
    /// within that subscription's complex part).
    query_owner: Vec<(SubscriptionId, usize)>,
    /// Per-subscription count of complex patterns (to know when all matched).
    complex_counts: HashMap<SubscriptionId, usize>,
    /// Subscriptions with no simple conditions: always active.
    always_active: Vec<SubscriptionId>,
    /// Engine statistics.
    pub stats: FilterStats,
}

impl FilterEngine {
    /// Creates an empty engine.
    pub fn new() -> Self {
        FilterEngine::default()
    }

    /// Builds an engine from a set of subscriptions.
    pub fn from_subscriptions(subscriptions: impl IntoIterator<Item = FilterSubscription>) -> Self {
        let mut engine = FilterEngine::new();
        engine.add_all(subscriptions);
        engine
    }

    /// Number of registered subscriptions.
    pub fn len(&self) -> usize {
        self.subscriptions.len()
    }

    /// True when no subscription is registered.
    pub fn is_empty(&self) -> bool {
        self.subscriptions.is_empty()
    }

    /// Access to a registered subscription (e.g. to apply its template).
    pub fn subscription(&self, id: SubscriptionId) -> Option<&FilterSubscription> {
        self.subscriptions.get(&id)
    }

    /// Registers a subscription (offline adjustment).
    ///
    /// The adjustment is *incremental*: the new conditions are appended to
    /// the preFilter alphabet, the subscription is inserted into the AES
    /// hash-tree and its patterns are added to the shared automaton — nothing
    /// already indexed is rebuilt.  This is what makes deployment of the
    /// N-th subscription O(|subscription|) instead of O(N), so a peer can
    /// absorb hundreds of hosted subscriptions cheaply.  Re-adding an id
    /// replaces the old subscription (that path falls back to a rebuild).
    pub fn add(&mut self, subscription: FilterSubscription) {
        let id = subscription.id;
        if self.subscriptions.insert(id, subscription).is_some() {
            // Replacement: the old conditions/patterns must disappear.
            self.rebuild();
            return;
        }
        self.index(id);
    }

    /// Registers many subscriptions, rebuilding the structures once.
    pub fn add_all(&mut self, subscriptions: impl IntoIterator<Item = FilterSubscription>) {
        for s in subscriptions {
            self.subscriptions.insert(s.id, s);
        }
        self.rebuild();
    }

    /// Removes a subscription; returns `true` when it existed.
    pub fn remove(&mut self, id: SubscriptionId) -> bool {
        let existed = self.subscriptions.remove(&id).is_some();
        if existed {
            self.rebuild();
        }
        existed
    }

    /// Size of the AES hash-tree (number of nodes), exposed for E3.
    pub fn aes_node_count(&self) -> usize {
        self.aes.node_count()
    }

    /// Number of YFilter NFA states, exposed for E4.
    pub fn yfilter_state_count(&self) -> usize {
        self.yfilter.state_count()
    }

    /// Rebuilds the pre-filter alphabet, the AES hash-tree and the YFilter
    /// automaton from the current subscription database.
    fn rebuild(&mut self) {
        self.prefilter = PreFilter::new();
        self.aes = AesFilter::new();
        self.yfilter = YFilter::new();
        self.query_owner.clear();
        self.complex_counts.clear();
        self.always_active.clear();

        // Deterministic iteration order keeps benches reproducible.
        let mut ids: Vec<SubscriptionId> = self.subscriptions.keys().copied().collect();
        ids.sort();
        for id in ids {
            self.index(id);
        }
    }

    /// Indexes one registered subscription into the three stages (the shared
    /// step of [`FilterEngine::add`] and [`FilterEngine::rebuild`]).
    fn index(&mut self, id: SubscriptionId) {
        let sub = &self.subscriptions[&id];
        let simple = sub.simple.clone();
        let complex = sub.complex.clone();
        let is_simple = sub.is_simple();
        let mut condition_ids: Vec<usize> =
            simple.iter().map(|c| self.prefilter.register(c)).collect();
        condition_ids.sort_unstable();
        condition_ids.dedup();
        if condition_ids.is_empty() {
            self.always_active.push(id);
            // Simple subscriptions with no conditions at all match
            // everything; they are handled in `process`.
        } else {
            self.aes.insert(&condition_ids, id, is_simple);
        }
        if !complex.is_empty() {
            self.complex_counts.insert(id, complex.len());
            for (pattern_idx, pattern) in complex.into_iter().enumerate() {
                let q = self.yfilter.add(pattern);
                debug_assert_eq!(q, self.query_owner.len());
                self.query_owner.push((id, pattern_idx));
            }
        }
    }

    /// Filters one (fully materialised) document.
    pub fn process(&mut self, document: &Element) -> FilterOutcome {
        self.stats.documents += 1;

        // Stage 1: simple conditions on the root attributes.
        let satisfied = self.prefilter.satisfied(document);

        // Stage 2: AES hash-tree.
        let aes_match = self.aes.matches(&satisfied);
        let mut matched: Vec<SubscriptionId> = aes_match.matched_simple.clone();
        let mut active: Vec<SubscriptionId> = aes_match.active_complex.clone();

        // Subscriptions with no simple conditions are always active (or
        // always matched when they have no complex part either).
        for &id in &self.always_active {
            let sub = &self.subscriptions[&id];
            if sub.is_simple() {
                matched.push(id);
            } else {
                active.push(id);
            }
        }
        active.sort_unstable();
        active.dedup();

        // Stage 3: YFilterσ over the active complex subscriptions only.
        if !active.is_empty() {
            self.stats.complex_stage_entered += 1;
            self.stats.complex_evaluations += active.len() as u64;
            let confirmed = self.evaluate_complex(document, &active);
            matched.extend(confirmed);
        }

        matched.sort_unstable();
        matched.dedup();
        if !matched.is_empty() {
            self.stats.documents_matched += 1;
        }
        FilterOutcome {
            matched,
            active_complex: active,
        }
    }

    /// Evaluates the tree-pattern parts of the active subscriptions, either
    /// directly (few active) or through the pruned automaton (many active).
    fn evaluate_complex(
        &mut self,
        document: &Element,
        active: &[SubscriptionId],
    ) -> Vec<SubscriptionId> {
        if active.len() <= DIRECT_EVALUATION_THRESHOLD {
            let mut confirmed = Vec::new();
            for &id in active {
                let sub = &self.subscriptions[&id];
                if sub.complex.iter().all(|p| p.matches(document)) {
                    confirmed.push(id);
                }
            }
            return confirmed;
        }
        // Restrict the automaton's accepts to the queries owned by active
        // subscriptions.
        let allowed: Vec<QueryIdx> = self
            .query_owner
            .iter()
            .enumerate()
            .filter(|(_, (owner, _))| active.contains(owner))
            .map(|(q, _)| q)
            .collect();
        let matched_queries = self
            .yfilter
            .matching_queries_filtered(document, Some(&allowed));
        // A subscription is confirmed when *all* of its patterns matched.
        let mut per_subscription: HashMap<SubscriptionId, usize> = HashMap::new();
        for q in matched_queries {
            let (owner, _) = self.query_owner[q];
            *per_subscription.entry(owner).or_insert(0) += 1;
        }
        per_subscription
            .into_iter()
            .filter(|(id, n)| self.complex_counts.get(id) == Some(n))
            .map(|(id, _)| id)
            .collect()
    }

    /// Filters a batch of documents, running the three stages once per
    /// *distinct* document: identical documents (by serialized form) share a
    /// single pass, which is what amortizes per-tick batched alert dispatch —
    /// a peer whose inbox holds the same alert for many subscriptions pays
    /// for one engine evaluation.  Duplicates share their outcome by index
    /// instead of cloning it; read per-input results through
    /// [`BatchOutcome::outcome`].
    pub fn match_batch(&mut self, docs: &[&Element]) -> BatchOutcome {
        let mut outcomes: Vec<FilterOutcome> = Vec::new();
        let mut index: Vec<usize> = Vec::with_capacity(docs.len());
        let mut first_seen: HashMap<String, usize> = HashMap::new();
        for doc in docs {
            let key = doc.to_xml();
            match first_seen.get(&key).copied() {
                Some(i) => index.push(i),
                None => {
                    first_seen.insert(key, outcomes.len());
                    index.push(outcomes.len());
                    outcomes.push(self.process(doc));
                }
            }
        }
        BatchOutcome { outcomes, index }
    }

    /// Filters a document that may contain unevaluated service calls
    /// (`sc` elements).  `resolver` performs the remote call on demand.
    ///
    /// The optimisation of Section 4: the simple conditions are checked on
    /// the root attributes *before* any service call; if no complex
    /// subscription remains active, the (possibly expensive) call is avoided
    /// entirely.  Returns the outcome together with the number of calls made.
    pub fn process_intensional(
        &mut self,
        document: &Element,
        resolver: &mut dyn FnMut(&ServiceCall) -> Result<Vec<Element>, String>,
    ) -> (FilterOutcome, usize) {
        let has_calls = ServiceCall::document_is_intensional(document);
        if !has_calls {
            return (self.process(document), 0);
        }

        // Run the cheap stages on the document as-is.
        let satisfied = self.prefilter.satisfied(document);
        let aes_match = self.aes.matches(&satisfied);
        let mut matched = aes_match.matched_simple.clone();
        let mut active = aes_match.active_complex.clone();
        for &id in &self.always_active {
            let sub = &self.subscriptions[&id];
            if sub.is_simple() {
                matched.push(id);
            } else {
                active.push(id);
            }
        }
        active.sort_unstable();
        active.dedup();
        self.stats.documents += 1;

        if active.is_empty() {
            // No complex subscription cares: the service call is avoided.
            let pending = ServiceCall::find_in(document).len();
            self.stats.service_calls_avoided += pending as u64;
            matched.sort_unstable();
            matched.dedup();
            if !matched.is_empty() {
                self.stats.documents_matched += 1;
            }
            return (
                FilterOutcome {
                    matched,
                    active_complex: active,
                },
                0,
            );
        }

        // Some complex subscription is active: materialise and evaluate.
        let mut materialised = document.clone();
        let calls = materialize(&mut materialised, resolver).unwrap_or(0);
        self.stats.service_calls_made += calls as u64;
        self.stats.complex_stage_entered += 1;
        self.stats.complex_evaluations += active.len() as u64;
        let confirmed = self.evaluate_complex(&materialised, &active);
        matched.extend(confirmed);
        matched.sort_unstable();
        matched.dedup();
        if !matched.is_empty() {
            self.stats.documents_matched += 1;
        }
        (
            FilterOutcome {
                matched,
                active_complex: active,
            },
            calls,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_streams::AttrCondition;
    use p2pmon_xmlkit::path::CompareOp;
    use p2pmon_xmlkit::{parse, PathPattern};

    fn sub_simple(id: u64, attr: &str, value: &str) -> FilterSubscription {
        FilterSubscription::new(id).with_simple(vec![AttrCondition::new(
            attr,
            CompareOp::Eq,
            value,
        )])
    }

    fn sub_complex(id: u64, attr: &str, value: &str, pattern: &str) -> FilterSubscription {
        FilterSubscription::new(id)
            .with_simple(vec![AttrCondition::new(attr, CompareOp::Eq, value)])
            .with_complex(vec![PathPattern::parse(pattern).unwrap()])
    }

    #[test]
    fn simple_and_complex_subscriptions_match_correctly() {
        let mut engine = FilterEngine::new();
        engine.add(sub_simple(1, "kind", "rss"));
        engine.add(sub_complex(2, "kind", "rss", "//item/title"));
        engine.add(sub_complex(3, "kind", "rss", "//item/enclosure"));
        engine.add(sub_simple(4, "kind", "soap"));

        let doc = parse(r#"<alert kind="rss"><item><title>x</title></item></alert>"#).unwrap();
        let outcome = engine.process(&doc);
        assert_eq!(outcome.matched, vec![SubscriptionId(1), SubscriptionId(2)]);
        assert_eq!(
            outcome.active_complex,
            vec![SubscriptionId(2), SubscriptionId(3)]
        );
    }

    #[test]
    fn no_simple_condition_subscriptions_are_always_considered() {
        let mut engine = FilterEngine::new();
        engine.add(FilterSubscription::new(1)); // matches everything
        engine
            .add(FilterSubscription::new(2).with_complex(vec![PathPattern::parse("//x").unwrap()]));
        let doc = parse("<r><x/></r>").unwrap();
        assert_eq!(
            engine.process(&doc).matched,
            vec![SubscriptionId(1), SubscriptionId(2)]
        );
        let doc2 = parse("<r><y/></r>").unwrap();
        assert_eq!(engine.process(&doc2).matched, vec![SubscriptionId(1)]);
    }

    #[test]
    fn remove_subscription_takes_effect() {
        let mut engine = FilterEngine::new();
        engine.add(sub_simple(1, "a", "1"));
        engine.add(sub_simple(2, "a", "1"));
        let doc = parse(r#"<r a="1"/>"#).unwrap();
        assert_eq!(engine.process(&doc).matched.len(), 2);
        assert!(engine.remove(SubscriptionId(1)));
        assert!(!engine.remove(SubscriptionId(1)));
        assert_eq!(engine.process(&doc).matched, vec![SubscriptionId(2)]);
    }

    #[test]
    fn subscription_with_multiple_patterns_needs_all_of_them() {
        let mut engine = FilterEngine::new();
        engine.add(
            FilterSubscription::new(9)
                .with_simple(vec![AttrCondition::new("k", CompareOp::Eq, "v")])
                .with_complex(vec![
                    PathPattern::parse("//a").unwrap(),
                    PathPattern::parse("//b").unwrap(),
                ]),
        );
        // Pad with enough other complex subscriptions to push the engine into
        // the shared-automaton path.
        for i in 10..20 {
            engine.add(sub_complex(i, "k", "v", "//zzz"));
        }
        let both = parse(r#"<r k="v"><a/><b/></r>"#).unwrap();
        let only_a = parse(r#"<r k="v"><a/></r>"#).unwrap();
        assert!(engine.process(&both).matched.contains(&SubscriptionId(9)));
        assert!(!engine.process(&only_a).matched.contains(&SubscriptionId(9)));
    }

    #[test]
    fn agrees_with_naive_filter_on_a_mixed_workload() {
        use crate::naive::NaiveFilter;
        let subs: Vec<FilterSubscription> = vec![
            sub_simple(1, "m", "GetTemperature"),
            sub_simple(2, "callee", "meteo.com"),
            sub_complex(3, "m", "GetTemperature", "//soap/body"),
            sub_complex(4, "m", "GetHumidity", "//soap/body"),
            FilterSubscription::new(5)
                .with_simple(vec![
                    AttrCondition::new("m", CompareOp::Eq, "GetTemperature"),
                    AttrCondition::new("callee", CompareOp::Eq, "meteo.com"),
                ])
                .with_complex(vec![PathPattern::parse("//city[text()=\"Orsay\"]").unwrap()]),
            FilterSubscription::new(6).with_simple(vec![AttrCondition::new(
                "dur",
                CompareOp::Gt,
                "10",
            )]),
        ];
        let mut engine = FilterEngine::from_subscriptions(subs.clone());
        let mut naive = NaiveFilter::from_subscriptions(subs);
        let docs = [
            r#"<alert m="GetTemperature" callee="meteo.com" dur="15"><soap><body><city>Orsay</city></body></soap></alert>"#,
            r#"<alert m="GetTemperature" callee="other.com" dur="5"><soap><body><city>Paris</city></body></soap></alert>"#,
            r#"<alert m="GetHumidity" callee="meteo.com"/>"#,
            r#"<alert/>"#,
        ];
        for d in docs {
            let doc = parse(d).unwrap();
            let mut a = engine.process(&doc).matched;
            let mut b = naive.matching(&doc);
            a.sort();
            b.sort();
            assert_eq!(a, b, "disagreement on {d}");
        }
    }

    #[test]
    fn intensional_documents_avoid_service_calls_when_simple_conditions_fail() {
        let mut engine = FilterEngine::new();
        // The paper's example: attr1="x" and attr2="z" and //c/d.
        engine.add(
            FilterSubscription::new(1)
                .with_simple(vec![
                    AttrCondition::new("attr1", CompareOp::Eq, "x"),
                    AttrCondition::new("attr2", CompareOp::Eq, "z"),
                ])
                .with_complex(vec![PathPattern::parse("//c/d").unwrap()]),
        );
        let doc = parse(
            r#"<root attr1="x" attr2="y"><sc service="storage" address="site"><parameters/></sc></root>"#,
        )
        .unwrap();
        let mut calls = 0usize;
        let (outcome, made) = engine.process_intensional(&doc, &mut |_| {
            calls += 1;
            Ok(vec![parse("<c><d/></c>").unwrap()])
        });
        assert!(outcome.matched.is_empty());
        assert_eq!(made, 0, "attr2 failed, the storage call must be avoided");
        assert_eq!(calls, 0);
        assert_eq!(engine.stats.service_calls_avoided, 1);
    }

    #[test]
    fn intensional_documents_materialise_when_needed() {
        let mut engine = FilterEngine::new();
        engine.add(
            FilterSubscription::new(1)
                .with_simple(vec![AttrCondition::new("attr1", CompareOp::Eq, "x")])
                .with_complex(vec![PathPattern::parse("//c/d").unwrap()]),
        );
        let doc = parse(
            r#"<root attr1="x"><sc service="storage" address="site"><parameters/></sc></root>"#,
        )
        .unwrap();
        let (outcome, made) =
            engine.process_intensional(&doc, &mut |_| Ok(vec![parse("<c><d/></c>").unwrap()]));
        assert_eq!(outcome.matched, vec![SubscriptionId(1)]);
        assert_eq!(made, 1);
        assert_eq!(engine.stats.service_calls_made, 1);
    }

    #[test]
    fn incremental_add_agrees_with_bulk_construction() {
        // Interleave adds with processing: the incrementally grown engine
        // must agree with one built in bulk at every prefix.
        let subs: Vec<FilterSubscription> = (0..24)
            .map(|i| match i % 3 {
                0 => sub_simple(i, "m", &format!("v{}", i % 5)),
                1 => sub_complex(i, "m", &format!("v{}", i % 5), "//item/title"),
                _ => FilterSubscription::new(i)
                    .with_complex(vec![PathPattern::parse("//item/enclosure").unwrap()]),
            })
            .collect();
        let docs = [
            r#"<alert m="v0"><item><title>x</title></item></alert>"#,
            r#"<alert m="v1"><item><enclosure/></item></alert>"#,
            r#"<alert m="v4"/>"#,
        ];
        let mut incremental = FilterEngine::new();
        for (n, sub) in subs.iter().enumerate() {
            incremental.add(sub.clone());
            let mut bulk = FilterEngine::from_subscriptions(subs[..=n].to_vec());
            for d in &docs {
                let doc = parse(d).unwrap();
                assert_eq!(
                    incremental.process(&doc).matched,
                    bulk.process(&doc).matched,
                    "prefix {n} disagrees on {d}"
                );
            }
        }
        // Re-adding an existing id replaces it.
        incremental.add(sub_simple(0, "m", "other"));
        assert_eq!(incremental.len(), 24);
        let doc = parse(r#"<alert m="other"/>"#).unwrap();
        assert!(incremental
            .process(&doc)
            .matched
            .contains(&SubscriptionId(0)));
    }

    #[test]
    fn match_batch_deduplicates_identical_documents() {
        let mut engine = FilterEngine::new();
        engine.add(sub_simple(1, "kind", "rss"));
        engine.add(sub_complex(2, "kind", "rss", "//item/title"));
        let hit = parse(r#"<alert kind="rss"><item><title>x</title></item></alert>"#).unwrap();
        let hit_again =
            parse(r#"<alert kind="rss"><item><title>x</title></item></alert>"#).unwrap();
        let miss = parse(r#"<alert kind="soap"/>"#).unwrap();
        let batch = engine.match_batch(&[&hit, &miss, &hit_again, &hit]);
        assert_eq!(batch.passes(), 2, "identical documents share one pass");
        assert_eq!(engine.stats.documents, 2);
        assert_eq!(
            batch.outcome(0).matched,
            vec![SubscriptionId(1), SubscriptionId(2)]
        );
        assert!(batch.outcome(1).matched.is_empty());
        assert_eq!(batch.index, vec![0, 1, 0, 0], "duplicates share by index");
        assert_eq!(batch.outcome(2), batch.outcome(0));
        // The batched outcomes agree with one-at-a-time processing.
        let mut fresh = FilterEngine::new();
        fresh.add(sub_simple(1, "kind", "rss"));
        fresh.add(sub_complex(2, "kind", "rss", "//item/title"));
        for (i, doc) in [&hit, &miss, &hit_again].iter().enumerate() {
            assert_eq!(&fresh.process(doc), batch.outcome(i));
        }
    }

    #[test]
    fn stats_absorb_sums_counters() {
        let a = FilterStats {
            documents: 3,
            documents_matched: 2,
            complex_evaluations: 5,
            complex_stage_entered: 1,
            service_calls_made: 1,
            service_calls_avoided: 4,
        };
        let mut b = a;
        b.absorb(&a);
        assert_eq!(b.documents, 6);
        assert_eq!(b.complex_evaluations, 10);
        assert_eq!(b.service_calls_avoided, 8);
    }

    #[test]
    fn stats_accumulate() {
        let mut engine = FilterEngine::new();
        engine.add(sub_simple(1, "a", "1"));
        engine.process(&parse(r#"<r a="1"/>"#).unwrap());
        engine.process(&parse(r#"<r a="2"/>"#).unwrap());
        assert_eq!(engine.stats.documents, 2);
        assert_eq!(engine.stats.documents_matched, 1);
    }
}

//! Filter subscriptions.
//!
//! At the Filter level, a subscription is the pair `(Qᵢ, Tᵢ)` of a
//! conjunctive query and a report template.  Since "the main performance
//! issue is to detect the matchings", the engine works with `Qᵢ` only; the
//! template is carried along opaquely for the caller to apply.

use p2pmon_streams::{AttrCondition, Template};
use p2pmon_xmlkit::PathPattern;

/// Identifier of a subscription registered with the Filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

impl std::fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

/// A subscription `Qᵢ = ∧ⱼ Cᵢⱼ ∧ Q'ᵢ`.
#[derive(Debug, Clone, PartialEq)]
pub struct FilterSubscription {
    /// Identifier.
    pub id: SubscriptionId,
    /// The simple conditions `Cᵢⱼ` on the root attributes, in any order (the
    /// engine canonicalises them).
    pub simple: Vec<AttrCondition>,
    /// The complex part `Q'ᵢ`: zero or more tree patterns that must all
    /// match.  Empty means the subscription is *simple*.
    pub complex: Vec<PathPattern>,
    /// The report template `Tᵢ`, applied by the caller once a match is found.
    pub template: Option<Template>,
}

impl FilterSubscription {
    /// Creates an empty subscription with the given id.
    pub fn new(id: u64) -> Self {
        FilterSubscription {
            id: SubscriptionId(id),
            simple: Vec::new(),
            complex: Vec::new(),
            template: None,
        }
    }

    /// Sets the simple conditions.
    pub fn with_simple(mut self, simple: Vec<AttrCondition>) -> Self {
        self.simple = simple;
        self
    }

    /// Sets the complex tree patterns.
    pub fn with_complex(mut self, complex: Vec<PathPattern>) -> Self {
        self.complex = complex;
        self
    }

    /// Sets the report template.
    pub fn with_template(mut self, template: Template) -> Self {
        self.template = Some(template);
        self
    }

    /// A subscription with no complex part is *simple*: the AES stage decides
    /// it completely.
    pub fn is_simple(&self) -> bool {
        self.complex.is_empty()
    }

    /// Reference evaluation of the whole subscription against a document,
    /// ignoring the staged architecture.  Used by [`crate::NaiveFilter`] and
    /// by property tests as ground truth.
    pub fn matches(&self, document: &p2pmon_xmlkit::Element) -> bool {
        self.simple.iter().all(|c| c.eval(document))
            && self.complex.iter().all(|p| p.matches(document))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_xmlkit::parse;
    use p2pmon_xmlkit::path::CompareOp;

    #[test]
    fn reference_matching() {
        let sub = FilterSubscription::new(1)
            .with_simple(vec![AttrCondition::new("a", CompareOp::Eq, "1")])
            .with_complex(vec![PathPattern::parse("//x/y").unwrap()]);
        assert!(sub.matches(&parse(r#"<r a="1"><x><y/></x></r>"#).unwrap()));
        assert!(!sub.matches(&parse(r#"<r a="2"><x><y/></x></r>"#).unwrap()));
        assert!(!sub.matches(&parse(r#"<r a="1"><x/></r>"#).unwrap()));
        assert!(!sub.is_simple());
        assert!(FilterSubscription::new(2).is_simple());
    }

    #[test]
    fn display_id() {
        assert_eq!(SubscriptionId(7).to_string(), "Q7");
    }
}

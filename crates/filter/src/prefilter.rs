//! The preFilter module.
//!
//! "The preFilter module is an automaton that, for each document t, reads the
//! first tag of t (so, in particular, the root's attributes).  It tests the
//! simple conditions which are organized in a hash-table with the attribute
//! name as key and the condition as value."
//!
//! The preFilter owns the *condition alphabet*: the set of distinct simple
//! conditions registered by all subscriptions, each with a stable index.
//! The AES hash-tree is built over those indices, so the ordering of the
//! alphabet is the total order the AES algorithm requires.

use std::collections::HashMap;

use p2pmon_streams::AttrCondition;
use p2pmon_xmlkit::Element;

/// Index of a condition in the alphabet.
pub type ConditionId = usize;

/// The preFilter: the condition alphabet plus the per-attribute hash table.
#[derive(Debug, Clone, Default)]
pub struct PreFilter {
    /// The alphabet, in registration order (this *is* the AES total order).
    conditions: Vec<AttrCondition>,
    /// Canonical key → condition id, to deduplicate identical conditions
    /// across subscriptions.
    by_key: HashMap<String, ConditionId>,
    /// Attribute name → conditions mentioning it.
    by_attr: HashMap<String, Vec<ConditionId>>,
    /// Documents processed (for statistics).
    pub documents_seen: u64,
    /// Total condition evaluations performed.
    pub evaluations: u64,
}

impl PreFilter {
    /// Creates an empty preFilter.
    pub fn new() -> Self {
        PreFilter::default()
    }

    /// Registers a condition, returning its id; identical conditions share an
    /// id (this is what lets thousands of subscriptions on the same callee
    /// cost one evaluation per document).
    pub fn register(&mut self, condition: &AttrCondition) -> ConditionId {
        let key = condition.key();
        if let Some(&id) = self.by_key.get(&key) {
            return id;
        }
        let id = self.conditions.len();
        self.conditions.push(condition.clone());
        self.by_key.insert(key, id);
        self.by_attr
            .entry(condition.attr.clone())
            .or_default()
            .push(id);
        id
    }

    /// The number of distinct conditions in the alphabet.
    pub fn alphabet_size(&self) -> usize {
        self.conditions.len()
    }

    /// Looks up a condition by id.
    pub fn condition(&self, id: ConditionId) -> Option<&AttrCondition> {
        self.conditions.get(id)
    }

    /// Evaluates the registered conditions against the *root attributes* of a
    /// document and returns the ordered (ascending id) list of satisfied
    /// condition ids.
    ///
    /// Only conditions whose attribute actually appears on the root are
    /// evaluated — this is the hash-table lookup of the paper, and it is what
    /// keeps the cost proportional to the root's attribute count rather than
    /// to the number of registered conditions.
    pub fn satisfied(&mut self, document: &Element) -> Vec<ConditionId> {
        self.documents_seen += 1;
        let mut out = Vec::new();
        for (attr, _value) in &document.attributes {
            if let Some(candidates) = self.by_attr.get(attr) {
                for &cid in candidates {
                    self.evaluations += 1;
                    if self.conditions[cid].eval(document) {
                        out.push(cid);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Same as [`PreFilter::satisfied`] but without mutating the statistics —
    /// used by read-only callers such as property tests.
    pub fn satisfied_readonly(&self, document: &Element) -> Vec<ConditionId> {
        let mut out = Vec::new();
        for (attr, _value) in &document.attributes {
            if let Some(candidates) = self.by_attr.get(attr) {
                for &cid in candidates {
                    if self.conditions[cid].eval(document) {
                        out.push(cid);
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_xmlkit::parse;
    use p2pmon_xmlkit::path::CompareOp;

    fn cond(attr: &str, op: CompareOp, v: &str) -> AttrCondition {
        AttrCondition::new(attr, op, v)
    }

    #[test]
    fn identical_conditions_share_an_id() {
        let mut pf = PreFilter::new();
        let a = pf.register(&cond("callee", CompareOp::Eq, "meteo.com"));
        let b = pf.register(&cond("callee", CompareOp::Eq, "meteo.com"));
        let c = pf.register(&cond("callee", CompareOp::Eq, "other.com"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(pf.alphabet_size(), 2);
    }

    #[test]
    fn satisfied_returns_ordered_ids() {
        let mut pf = PreFilter::new();
        let c0 = pf.register(&cond("m", CompareOp::Eq, "GetTemperature"));
        let c1 = pf.register(&cond("callee", CompareOp::Eq, "meteo.com"));
        let c2 = pf.register(&cond("dur", CompareOp::Gt, "10"));
        let doc = parse(r#"<alert dur="15" m="GetTemperature" callee="meteo.com"/>"#).unwrap();
        assert_eq!(pf.satisfied(&doc), vec![c0, c1, c2]);
        let doc2 = parse(r#"<alert dur="5" m="GetTemperature" callee="nowhere"/>"#).unwrap();
        assert_eq!(pf.satisfied(&doc2), vec![c0]);
    }

    #[test]
    fn only_present_attributes_are_evaluated() {
        let mut pf = PreFilter::new();
        for i in 0..100 {
            pf.register(&cond(&format!("attr{i}"), CompareOp::Eq, "v"));
        }
        let doc = parse(r#"<alert attr5="v" attr50="x"/>"#).unwrap();
        let satisfied = pf.satisfied(&doc);
        assert_eq!(satisfied.len(), 1);
        // Only the two conditions whose attribute is present were evaluated,
        // not all 100 — the hash-table property the paper relies on.
        assert_eq!(pf.evaluations, 2);
    }

    #[test]
    fn inequality_conditions() {
        let mut pf = PreFilter::new();
        let le = pf.register(&cond("size", CompareOp::Le, "100"));
        let ne = pf.register(&cond("kind", CompareOp::Ne, "noise"));
        let doc = parse(r#"<e size="80" kind="signal"/>"#).unwrap();
        assert_eq!(pf.satisfied(&doc), vec![le, ne]);
        let doc = parse(r#"<e size="200" kind="noise"/>"#).unwrap();
        assert!(pf.satisfied(&doc).is_empty());
    }

    #[test]
    fn readonly_matches_mutating_version() {
        let mut pf = PreFilter::new();
        pf.register(&cond("a", CompareOp::Eq, "1"));
        pf.register(&cond("b", CompareOp::Gt, "5"));
        let doc = parse(r#"<e a="1" b="9"/>"#).unwrap();
        assert_eq!(pf.satisfied_readonly(&doc), pf.satisfied(&doc));
    }
}

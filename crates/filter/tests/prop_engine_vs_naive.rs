//! Property tests: the staged FilterEngine must agree with the naive
//! reference filter on arbitrary subscription sets and documents, and the
//! YFilter automaton must agree with naive per-pattern matching.

use proptest::prelude::*;

use p2pmon_filter::{CostModelConfig, FilterEngine, FilterSubscription, NaiveFilter, YFilter};
use p2pmon_streams::AttrCondition;
use p2pmon_xmlkit::path::CompareOp;
use p2pmon_xmlkit::{Element, PathPattern};

const ATTRS: &[&str] = &["callMethod", "callee", "dur", "kind", "peer"];
const VALUES: &[&str] = &["GetTemperature", "meteo.com", "5", "20", "rss", "p1"];
const TAGS: &[&str] = &["soap", "body", "city", "item", "title", "error", "entry"];

fn attr_condition_strategy() -> impl Strategy<Value = AttrCondition> {
    (
        proptest::sample::select(ATTRS.to_vec()),
        proptest::sample::select(vec![
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Gt,
        ]),
        proptest::sample::select(VALUES.to_vec()),
    )
        .prop_map(|(a, op, v)| AttrCondition::new(a, op, v))
}

fn pattern_strategy() -> impl Strategy<Value = PathPattern> {
    (
        proptest::sample::select(TAGS.to_vec()),
        proptest::sample::select(TAGS.to_vec()),
        proptest::bool::ANY,
    )
        .prop_map(|(a, b, descendant)| {
            let src = if descendant {
                format!("//{a}/{b}")
            } else {
                format!("//{a}//{b}")
            };
            PathPattern::parse(&src).expect("valid pattern")
        })
}

fn subscription_strategy(id: u64) -> impl Strategy<Value = FilterSubscription> {
    (
        proptest::collection::vec(attr_condition_strategy(), 0..3),
        proptest::collection::vec(pattern_strategy(), 0..2),
    )
        .prop_map(move |(simple, complex)| {
            FilterSubscription::new(id)
                .with_simple(simple)
                .with_complex(complex)
        })
}

fn subscriptions_strategy() -> impl Strategy<Value = Vec<FilterSubscription>> {
    proptest::collection::vec(proptest::num::u8::ANY, 1..20).prop_flat_map(|seeds| {
        seeds
            .into_iter()
            .enumerate()
            .map(|(i, _)| subscription_strategy(i as u64))
            .collect::<Vec<_>>()
    })
}

/// Documents whose root attributes and children are drawn from the same small
/// vocabularies, so that matches actually occur.
fn document_strategy() -> impl Strategy<Value = Element> {
    (
        proptest::collection::vec(
            (
                proptest::sample::select(ATTRS.to_vec()),
                proptest::sample::select(VALUES.to_vec()),
            ),
            0..4,
        ),
        proptest::collection::vec(
            (
                proptest::sample::select(TAGS.to_vec()),
                proptest::sample::select(TAGS.to_vec()),
            ),
            0..4,
        ),
    )
        .prop_map(|(attrs, children)| {
            let mut root = Element::new("alert");
            for (k, v) in attrs {
                root.set_attr(k, v);
            }
            for (outer, inner) in children {
                let mut c = Element::new(outer);
                c.push_element(Element::text_element(inner, "x"));
                root.push_element(c);
            }
            root
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engine_agrees_with_naive(
        subs in subscriptions_strategy(),
        docs in proptest::collection::vec(document_strategy(), 1..8),
    ) {
        let mut engine = FilterEngine::from_subscriptions(subs.clone());
        let mut naive = NaiveFilter::from_subscriptions(subs);
        for doc in &docs {
            let mut staged = engine.process(doc).matched;
            let mut reference = naive.matching(doc);
            staged.sort();
            reference.sort();
            prop_assert_eq!(staged, reference, "document: {}", doc.to_xml());
        }
    }

    #[test]
    fn yfilter_agrees_with_naive_pattern_matching(
        patterns in proptest::collection::vec(pattern_strategy(), 1..30),
        docs in proptest::collection::vec(document_strategy(), 1..6),
    ) {
        let mut yf = YFilter::from_patterns(patterns.clone());
        for doc in &docs {
            let nfa: Vec<usize> = yf.matching_queries(doc);
            let naive: Vec<usize> = patterns
                .iter()
                .enumerate()
                .filter(|(_, p)| p.matches(doc))
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(nfa, naive, "document: {}", doc.to_xml());
        }
    }

    /// The tentpole equivalence: a cost-adaptive engine (which promotes and
    /// demotes itself mid-stream), an always-staged engine and the naive
    /// reference must produce identical match sets on every document of an
    /// interleaved add / process / remove schedule — mode transitions change
    /// nothing observable.
    #[test]
    fn adaptive_agrees_with_staged_and_naive_under_churn(
        subs in subscriptions_strategy(),
        docs in proptest::collection::vec(document_strategy(), 2..10),
        removals in proptest::collection::vec(proptest::num::u8::ANY, 0..6),
        aggressive in proptest::bool::ANY,
    ) {
        // Aggressive constants force promotion almost immediately; default
        // constants usually keep these tiny databases naive.  Either way the
        // outcomes must agree.
        let mut adaptive = if aggressive {
            FilterEngine::adaptive_with(CostModelConfig {
                build_chunk: 2,
                ..CostModelConfig::aggressive()
            })
        } else {
            FilterEngine::adaptive()
        };
        let mut staged = FilterEngine::new();
        let mut naive = NaiveFilter::new();

        // Interleave: add a few subscriptions, process a document, remove an
        // arbitrary registered subscription, process again …
        let mut pending = subs.into_iter();
        for (step, doc) in docs.iter().enumerate() {
            for sub in pending.by_ref().take(3) {
                adaptive.add(sub.clone());
                staged.add(sub.clone());
                naive.add(sub);
            }
            if let Some(&seed) = removals.get(step) {
                let victim = p2pmon_filter::SubscriptionId(u64::from(seed) % 20);
                let a = adaptive.remove(victim);
                let s = staged.remove(victim);
                let n = naive.remove(victim);
                prop_assert_eq!(a, s);
                prop_assert_eq!(a, n);
            }
            let mut from_adaptive = adaptive.process(doc).matched;
            let mut from_staged = staged.process(doc).matched;
            let mut reference = naive.matching(doc);
            from_adaptive.sort();
            from_staged.sort();
            reference.sort();
            prop_assert_eq!(
                &from_adaptive, &reference,
                "adaptive ({} mode) diverged on step {}: {}",
                adaptive.mode(), step, doc.to_xml()
            );
            prop_assert_eq!(
                &from_staged, &reference,
                "staged diverged on step {}: {}",
                step, doc.to_xml()
            );
        }
    }

    #[test]
    fn active_complex_is_a_superset_of_complex_matches(
        subs in subscriptions_strategy(),
        doc in document_strategy(),
    ) {
        let mut engine = FilterEngine::from_subscriptions(subs.clone());
        let outcome = engine.process(&doc);
        for sub in &subs {
            if !sub.complex.is_empty() && outcome.matched.contains(&sub.id) {
                prop_assert!(
                    outcome.active_complex.contains(&sub.id),
                    "complex subscription {} matched without being active",
                    sub.id
                );
            }
        }
    }
}

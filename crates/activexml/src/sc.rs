//! Service-call (`sc`) elements.
//!
//! An ActiveXML document is an XML document in which some elements denote
//! calls to Web services.  Evaluating the call enriches the document with the
//! result (typically replacing or appending at the call site).  In the
//! monitoring setting, an alerter may ship a stream item containing an `sc`
//! element instead of a large payload; the Filter only triggers the call if
//! the cheap, attribute-level conditions already passed (Section 4).

use p2pmon_xmlkit::{Element, Node};

/// How the result of a call is merged back into the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeMode {
    /// The result replaces the `sc` element (the paper's default).
    #[default]
    Replace,
    /// The result is appended as a sibling after the `sc` element, keeping
    /// the call available for later refresh.
    Append,
}

impl MergeMode {
    /// Parses the `mode` attribute of an `sc` element.
    pub fn from_attr(value: Option<&str>) -> MergeMode {
        match value {
            Some("append") => MergeMode::Append,
            _ => MergeMode::Replace,
        }
    }

    /// The attribute value used when serializing.
    pub fn as_attr(&self) -> &'static str {
        match self {
            MergeMode::Replace => "replace",
            MergeMode::Append => "append",
        }
    }
}

/// A parsed `sc` element: a call to `service` hosted at `address`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceCall {
    /// Name of the remote service ("storage", "getPackageList", …).
    pub service: String,
    /// Peer (or URL) hosting the service.
    pub address: String,
    /// Call parameters, passed through verbatim.
    pub parameters: Vec<Element>,
    /// How the result is merged back.
    pub merge: MergeMode,
}

impl ServiceCall {
    /// Creates a new call description.
    pub fn new(service: impl Into<String>, address: impl Into<String>) -> Self {
        ServiceCall {
            service: service.into(),
            address: address.into(),
            parameters: Vec::new(),
            merge: MergeMode::Replace,
        }
    }

    /// Adds a parameter element.
    pub fn with_parameter(mut self, parameter: Element) -> Self {
        self.parameters.push(parameter);
        self
    }

    /// Sets the merge mode.
    pub fn with_merge(mut self, merge: MergeMode) -> Self {
        self.merge = merge;
        self
    }

    /// True if `element` is an `sc` element.
    pub fn is_sc(element: &Element) -> bool {
        element.name == "sc" && element.attr("service").is_some()
    }

    /// Parses an `sc` element, if it is one.
    pub fn from_element(element: &Element) -> Option<ServiceCall> {
        if !Self::is_sc(element) {
            return None;
        }
        let service = element.attr("service")?.to_string();
        let address = element.attr("address").unwrap_or("any").to_string();
        let parameters = element
            .child("parameters")
            .map(|p| p.child_elements().cloned().collect())
            .unwrap_or_default();
        Some(ServiceCall {
            service,
            address,
            parameters,
            merge: MergeMode::from_attr(element.attr("mode")),
        })
    }

    /// Serializes the call back to an `sc` element.
    pub fn to_element(&self) -> Element {
        let mut sc = Element::new("sc");
        sc.set_attr("service", self.service.clone());
        sc.set_attr("address", self.address.clone());
        if self.merge != MergeMode::Replace {
            sc.set_attr("mode", self.merge.as_attr());
        }
        if !self.parameters.is_empty() {
            let mut params = Element::new("parameters");
            for p in &self.parameters {
                params.push_element(p.clone());
            }
            sc.push_element(params);
        }
        sc
    }

    /// Finds every service call embedded anywhere in a document.
    pub fn find_in(document: &Element) -> Vec<ServiceCall> {
        let mut out = Vec::new();
        document.walk(&mut |e| {
            if let Some(call) = ServiceCall::from_element(e) {
                out.push(call);
            }
        });
        out
    }

    /// True if the document contains at least one unevaluated service call.
    /// Documents with calls are *intensional*: part of their content is only
    /// available on demand.
    pub fn document_is_intensional(document: &Element) -> bool {
        let mut found = false;
        document.walk(&mut |e| {
            if ServiceCall::is_sc(e) {
                found = true;
            }
        });
        found
    }
}

/// Materializes every `sc` element in `document` using `resolver`, which maps
/// a [`ServiceCall`] to the elements it evaluates to (an error string when
/// the call fails).  Returns the number of calls performed.
///
/// With [`MergeMode::Replace`] the `sc` subtree is replaced by the results;
/// with [`MergeMode::Append`] results are inserted after it.
pub fn materialize(
    document: &mut Element,
    resolver: &mut dyn FnMut(&ServiceCall) -> Result<Vec<Element>, String>,
) -> Result<usize, String> {
    let mut calls_made = 0usize;
    materialize_children(document, resolver, &mut calls_made)?;
    Ok(calls_made)
}

fn materialize_children(
    element: &mut Element,
    resolver: &mut dyn FnMut(&ServiceCall) -> Result<Vec<Element>, String>,
    calls_made: &mut usize,
) -> Result<(), String> {
    let mut idx = 0;
    while idx < element.children.len() {
        let replacement = match &element.children[idx] {
            Node::Element(child) if ServiceCall::is_sc(child) => {
                let call = ServiceCall::from_element(child)
                    .ok_or_else(|| "malformed sc element".to_string())?;
                let results = resolver(&call)?;
                *calls_made += 1;
                Some((call.merge, results))
            }
            _ => None,
        };
        match replacement {
            Some((MergeMode::Replace, results)) => {
                element.children.remove(idx);
                for (offset, r) in results.into_iter().enumerate() {
                    element.children.insert(idx + offset, Node::Element(r));
                }
            }
            Some((MergeMode::Append, results)) => {
                let mut insert_at = idx + 1;
                for r in results {
                    element.children.insert(insert_at, Node::Element(r));
                    insert_at += 1;
                }
                idx = insert_at;
            }
            None => {
                if let Node::Element(child) = &mut element.children[idx] {
                    materialize_children(child, resolver, calls_made)?;
                }
                idx += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_xmlkit::parse;

    fn doc_with_call() -> Element {
        parse(
            r#"<root attr1="x" attr2="y">
                 <sc service="storage" address="site">
                   <parameters><key>42</key></parameters>
                 </sc>
               </root>"#,
        )
        .unwrap()
    }

    #[test]
    fn parse_sc_element() {
        let doc = doc_with_call();
        let calls = ServiceCall::find_in(&doc);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].service, "storage");
        assert_eq!(calls[0].address, "site");
        assert_eq!(calls[0].parameters.len(), 1);
        assert_eq!(calls[0].merge, MergeMode::Replace);
        assert!(ServiceCall::document_is_intensional(&doc));
    }

    #[test]
    fn sc_round_trip() {
        let call = ServiceCall::new("getTemp", "meteo.com")
            .with_parameter(Element::text_element("city", "Orsay"))
            .with_merge(MergeMode::Append);
        let el = call.to_element();
        assert_eq!(ServiceCall::from_element(&el), Some(call));
    }

    #[test]
    fn materialize_replaces_call_with_result() {
        let mut doc = doc_with_call();
        let n = materialize(&mut doc, &mut |call| {
            assert_eq!(call.service, "storage");
            Ok(vec![parse("<c><d>payload</d></c>").unwrap()])
        })
        .unwrap();
        assert_eq!(n, 1);
        assert!(!ServiceCall::document_is_intensional(&doc));
        assert!(doc.find_descendant("d").is_some());
        // The paper's example: //c/d becomes true only after materialization.
        let p = p2pmon_xmlkit::XPath::parse("//c/d").unwrap();
        assert!(p.matches(&doc));
    }

    #[test]
    fn materialize_append_keeps_call() {
        let mut doc = parse(r#"<root><sc service="s" address="a" mode="append"/></root>"#).unwrap();
        materialize(&mut doc, &mut |_| Ok(vec![Element::new("result")])).unwrap();
        assert!(ServiceCall::document_is_intensional(&doc));
        assert!(doc.child("result").is_some());
    }

    #[test]
    fn materialize_propagates_failures() {
        let mut doc = doc_with_call();
        let err = materialize(&mut doc, &mut |_| Err("service unreachable".into()));
        assert!(err.is_err());
    }

    #[test]
    fn nested_calls_are_found_and_materialized() {
        let mut doc = parse(
            r#"<root><wrap><sc service="inner" address="p"/></wrap><sc service="outer" address="q"/></root>"#,
        )
        .unwrap();
        assert_eq!(ServiceCall::find_in(&doc).len(), 2);
        let n = materialize(&mut doc, &mut |c| {
            Ok(vec![Element::text_element("from", c.service.clone())])
        })
        .unwrap();
        assert_eq!(n, 2);
        assert_eq!(doc.find_descendant("from").unwrap().text(), "inner");
    }

    #[test]
    fn non_sc_elements_untouched() {
        let mut doc = parse("<root><sc/><child/></root>").unwrap();
        // `sc` without a service attribute is not a service call.
        let n = materialize(&mut doc, &mut |_| Ok(vec![])).unwrap();
        assert_eq!(n, 0);
        assert_eq!(doc.child_elements().count(), 2);
    }

    #[test]
    fn multiple_results_inserted_in_order() {
        let mut doc = parse(r#"<root><sc service="list" address="p"/></root>"#).unwrap();
        materialize(&mut doc, &mut |_| {
            Ok(vec![
                Element::text_element("i", "1"),
                Element::text_element("i", "2"),
            ])
        })
        .unwrap();
        let items: Vec<String> = doc.children_named("i").map(|e| e.text()).collect();
        assert_eq!(items, vec!["1", "2"]);
    }
}

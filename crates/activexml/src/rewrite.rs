//! Rewrite rules of the ActiveXML algebra (Section 3.3–3.4).
//!
//! The two central rules:
//!
//! 1. **Local service invocation** — `eval@p(s@p(…, tᵢ, …))` becomes
//!    `◦s@p(…, eval@p(tᵢ), …)`: the evaluation request dissolves into the
//!    service itself, which now runs locally, and the arguments are evaluated
//!    in place.
//!
//! 2. **External service invocation** — when peer `p` evaluates a service
//!    located at another peer `p'`, the call is split: `p` installs a
//!    `receive()` at a fresh node `♯x@p`, and `p'` is asked to evaluate the
//!    service and `send` its (stream of) results to that node.  Operationally
//!    the node corresponds to a channel published by `p'` with `p` as first
//!    subscriber — the very mechanism Section 3.4 uses to connect the four
//!    peers of the meteo example.
//!
//! [`rewrite_distributed`] applies the rules exhaustively, turning a placed,
//! concrete plan into a set of concurrent per-peer expressions; the
//! [`extract_peer_tasks`] helper groups them by peer so that the Subscription
//! Manager can ship each fragment to its executor.

use std::fmt;

use crate::algebra::{AlgebraError, Expr, NodeRef, PeerRef, ServiceState};

/// A fragment of the rewritten plan to be executed at one peer.
#[derive(Debug, Clone, PartialEq)]
pub struct PeerTask {
    /// The peer responsible for this fragment.
    pub peer: String,
    /// The expression the peer executes.
    pub expr: Expr,
}

impl fmt::Display for PeerTask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "% at {}\n{}", self.peer, self.expr)
    }
}

/// Statistics about a rewrite, used by the optimizer to compare plans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Number of `send`/`receive` pairs introduced — i.e. channels that will
    /// carry data between peers at run time.
    pub channels: usize,
    /// Number of local-invocation rule applications.
    pub local_invocations: usize,
}

/// Applies the rewrite rules to a *concrete* plan rooted at `eval@p(…)`.
///
/// Returns the list of concurrent per-peer expressions (the "&"-separated
/// actions of the paper) together with rewrite statistics.  Fails when the
/// plan still contains generic (`@any`) services, because placement must
/// happen before distribution.
pub fn rewrite_distributed(plan: &Expr) -> Result<(Vec<PeerTask>, RewriteStats), AlgebraError> {
    if !plan.is_concrete() {
        return Err(AlgebraError::new(
            "plan contains generic @any services; run placement first",
        ));
    }
    let root_peer = match plan {
        Expr::Eval { peer, .. } => peer
            .as_peer()
            .ok_or_else(|| AlgebraError::new("root eval must name a concrete peer"))?
            .to_string(),
        _ => {
            return Err(AlgebraError::new(
                "distributed rewriting expects a plan rooted at eval@p(…)",
            ))
        }
    };

    let mut ctx = RewriteContext {
        tasks: Vec::new(),
        stats: RewriteStats::default(),
        next_node: 0,
    };
    let inner = match plan {
        Expr::Eval { expr, .. } => expr.as_ref().clone(),
        _ => unreachable!("checked above"),
    };
    let rewritten = ctx.localize(inner, &root_peer)?;
    ctx.tasks.insert(
        0,
        PeerTask {
            peer: root_peer,
            expr: rewritten,
        },
    );
    Ok((ctx.tasks, ctx.stats))
}

/// Groups per-peer tasks by peer, preserving order of first appearance.
/// Several fragments may land on the same peer (e.g. a filter and a join).
pub fn extract_peer_tasks(tasks: &[PeerTask]) -> Vec<(String, Vec<&Expr>)> {
    let mut grouped: Vec<(String, Vec<&Expr>)> = Vec::new();
    for task in tasks {
        match grouped.iter_mut().find(|(p, _)| *p == task.peer) {
            Some((_, exprs)) => exprs.push(&task.expr),
            None => grouped.push((task.peer.clone(), vec![&task.expr])),
        }
    }
    grouped
}

struct RewriteContext {
    tasks: Vec<PeerTask>,
    stats: RewriteStats,
    next_node: usize,
}

impl RewriteContext {
    fn fresh_node(&mut self, peer: &str) -> NodeRef {
        // Node names follow the paper's X, Y, Z, … then X1, X2, …
        const NAMES: [&str; 6] = ["X", "Y", "Z", "M", "N", "O"];
        let name = if self.next_node < NAMES.len() {
            NAMES[self.next_node].to_string()
        } else {
            format!("X{}", self.next_node - NAMES.len() + 1)
        };
        self.next_node += 1;
        NodeRef::new(name, peer)
    }

    /// Rewrites `expr` so that everything remaining in the returned
    /// expression executes at `host`.  Sub-expressions located at other peers
    /// are split off as separate tasks connected through send/receive.
    fn localize(&mut self, expr: Expr, host: &str) -> Result<Expr, AlgebraError> {
        match expr {
            Expr::Service {
                name,
                peer,
                state: _,
                args,
            } => {
                let service_peer = peer
                    .as_peer()
                    .ok_or_else(|| AlgebraError::new(format!("service {name} is still generic")))?
                    .to_string();
                if service_peer == host {
                    // Local invocation rule: run here, localize arguments.
                    self.stats.local_invocations += 1;
                    let mut new_args = Vec::with_capacity(args.len());
                    for a in args {
                        new_args.push(self.localize(a, host)?);
                    }
                    Ok(Expr::Service {
                        name,
                        peer: PeerRef::peer(service_peer),
                        state: ServiceState::Running,
                        args: new_args,
                    })
                } else {
                    // External invocation rule: receive here, delegate there.
                    let node = self.fresh_node(host);
                    self.stats.channels += 1;
                    // The remote side evaluates the service (localized to the
                    // remote peer) and sends results to our node.
                    let remote_expr = self.localize(
                        Expr::Service {
                            name,
                            peer: PeerRef::peer(service_peer.clone()),
                            state: ServiceState::Pending,
                            args,
                        },
                        &service_peer,
                    )?;
                    self.tasks.push(PeerTask {
                        peer: service_peer.clone(),
                        expr: Expr::Send {
                            peer: PeerRef::peer(service_peer),
                            target: node.clone(),
                            expr: Box::new(remote_expr),
                        },
                    });
                    Ok(Expr::Receive { node })
                }
            }
            Expr::Eval { peer, expr } => {
                // A nested eval collapses into localization at its peer.
                let eval_peer = peer
                    .as_peer()
                    .ok_or_else(|| AlgebraError::new("eval at generic peer"))?
                    .to_string();
                if eval_peer == host {
                    self.localize(*expr, host)
                } else {
                    let node = self.fresh_node(host);
                    self.stats.channels += 1;
                    let remote = self.localize(*expr, &eval_peer)?;
                    self.tasks.push(PeerTask {
                        peer: eval_peer.clone(),
                        expr: Expr::Send {
                            peer: PeerRef::peer(eval_peer),
                            target: node.clone(),
                            expr: Box::new(remote),
                        },
                    });
                    Ok(Expr::Receive { node })
                }
            }
            Expr::Label { label, children } => {
                let mut new_children = Vec::with_capacity(children.len());
                for c in children {
                    new_children.push(self.localize(c, host)?);
                }
                Ok(Expr::Label {
                    label,
                    children: new_children,
                })
            }
            Expr::Document { name, peer } => {
                let doc_peer = peer
                    .as_peer()
                    .ok_or_else(|| AlgebraError::new("document at generic peer"))?;
                if doc_peer == host {
                    Ok(Expr::Document {
                        name,
                        peer: PeerRef::peer(doc_peer.to_string()),
                    })
                } else {
                    // Remote document access becomes a read service delegated
                    // to the hosting peer.
                    let doc_peer = doc_peer.to_string();
                    self.localize(
                        Expr::Service {
                            name: format!("read:{name}"),
                            peer: PeerRef::peer(doc_peer),
                            state: ServiceState::Pending,
                            args: vec![],
                        },
                        host,
                    )
                }
            }
            leaf @ (Expr::Data(_) | Expr::Receive { .. } | Expr::Var(_)) => Ok(leaf),
            Expr::Send { .. } => Err(AlgebraError::new(
                "send may not appear in a plan before rewriting",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::Expr;

    /// The placed plan of Section 3.4:
    /// `eval@p(publisher@p(ΠT@meteo(⋈P@meteo(∪@b(σF@a(out@a), σF@b(out@b)), σF'@meteo(in@meteo)))))`.
    fn placed_meteo_plan() -> Expr {
        let out_a = Expr::service("outCOM", PeerRef::peer("a.com"), vec![]);
        let out_b = Expr::service("outCOM", PeerRef::peer("b.com"), vec![]);
        let in_m = Expr::service("inCOM", PeerRef::peer("meteo.com"), vec![]);
        let sigma_a = Expr::service("sigma_F", PeerRef::peer("a.com"), vec![out_a]);
        let sigma_b = Expr::service("sigma_F", PeerRef::peer("b.com"), vec![out_b]);
        let union = Expr::service("union", PeerRef::peer("b.com"), vec![sigma_a, sigma_b]);
        let sigma_in = Expr::service("sigma_F2", PeerRef::peer("meteo.com"), vec![in_m]);
        let join = Expr::service("join_P", PeerRef::peer("meteo.com"), vec![union, sigma_in]);
        let pi = Expr::service("pi_T", PeerRef::peer("meteo.com"), vec![join]);
        let publisher = Expr::service("publisher", PeerRef::peer("p"), vec![pi]);
        Expr::eval("p", publisher)
    }

    #[test]
    fn meteo_plan_rewrites_to_four_peer_tasks_and_three_channels() {
        let plan = placed_meteo_plan();
        let (tasks, stats) = rewrite_distributed(&plan).unwrap();
        // One fragment per peer: p, meteo.com, b.com, a.com.
        let peers: Vec<&str> = tasks.iter().map(|t| t.peer.as_str()).collect();
        assert_eq!(peers.len(), 4, "{peers:?}");
        assert!(peers.contains(&"p"));
        assert!(peers.contains(&"meteo.com"));
        assert!(peers.contains(&"b.com"));
        assert!(peers.contains(&"a.com"));
        // Three channels: a.com→b.com (X), b.com→meteo.com (Y), meteo.com→p (M
        // in the paper; names differ but the count is what matters).
        assert_eq!(stats.channels, 3);
        assert!(stats.local_invocations >= 6);
    }

    #[test]
    fn consumer_side_contains_receive_and_producer_side_contains_send() {
        let plan = placed_meteo_plan();
        let (tasks, _) = rewrite_distributed(&plan).unwrap();
        let root = &tasks[0];
        assert_eq!(root.peer, "p");
        let root_str = root.expr.to_string();
        assert!(root_str.contains("◦receive()"), "{root_str}");
        let a_task = tasks.iter().find(|t| t.peer == "a.com").unwrap();
        let a_str = a_task.expr.to_string();
        assert!(a_str.starts_with("send@a.com("), "{a_str}");
        assert!(a_str.contains("◦sigma_F@a.com(◦outCOM@a.com())"), "{a_str}");
    }

    #[test]
    fn fully_local_plan_creates_no_channels() {
        let local = Expr::eval(
            "p",
            Expr::service(
                "sigma",
                PeerRef::peer("p"),
                vec![Expr::service("alerter", PeerRef::peer("p"), vec![])],
            ),
        );
        let (tasks, stats) = rewrite_distributed(&local).unwrap();
        assert_eq!(tasks.len(), 1);
        assert_eq!(stats.channels, 0);
        assert_eq!(stats.local_invocations, 2);
    }

    #[test]
    fn generic_plan_is_rejected() {
        let plan = Expr::eval("p", Expr::generic("sigma", vec![]));
        let err = rewrite_distributed(&plan).unwrap_err();
        assert!(err.message.contains("generic"));
    }

    #[test]
    fn non_eval_root_is_rejected() {
        let plan = Expr::generic("sigma", vec![]);
        assert!(rewrite_distributed(&plan).is_err());
    }

    #[test]
    fn remote_document_access_is_delegated() {
        let plan = Expr::eval(
            "p",
            Expr::service(
                "sigma",
                PeerRef::peer("p"),
                vec![Expr::Document {
                    name: "catalog".into(),
                    peer: PeerRef::peer("q"),
                }],
            ),
        );
        let (tasks, stats) = rewrite_distributed(&plan).unwrap();
        assert_eq!(stats.channels, 1);
        let q_task = tasks.iter().find(|t| t.peer == "q").unwrap();
        assert!(q_task.expr.to_string().contains("read:catalog"));
    }

    #[test]
    fn extract_groups_multiple_fragments_per_peer() {
        // Two remote filters on the same peer produce two fragments there.
        let plan = Expr::eval(
            "p",
            Expr::service(
                "union",
                PeerRef::peer("p"),
                vec![
                    Expr::service(
                        "sigma1",
                        PeerRef::peer("q"),
                        vec![Expr::service("alerter", PeerRef::peer("q"), vec![])],
                    ),
                    Expr::service(
                        "sigma2",
                        PeerRef::peer("q"),
                        vec![Expr::service("alerter", PeerRef::peer("q"), vec![])],
                    ),
                ],
            ),
        );
        let (tasks, _) = rewrite_distributed(&plan).unwrap();
        let grouped = extract_peer_tasks(&tasks);
        let q = grouped.iter().find(|(p, _)| p == "q").unwrap();
        assert_eq!(q.1.len(), 2);
    }

    #[test]
    fn channel_count_grows_with_remote_sources() {
        for n in 1..6usize {
            let sources: Vec<Expr> = (0..n)
                .map(|i| {
                    Expr::service(
                        "sigma",
                        PeerRef::peer(format!("client{i}.com")),
                        vec![Expr::service(
                            "outCOM",
                            PeerRef::peer(format!("client{i}.com")),
                            vec![],
                        )],
                    )
                })
                .collect();
            let plan = Expr::eval("hub", Expr::service("union", PeerRef::peer("hub"), sources));
            let (_, stats) = rewrite_distributed(&plan).unwrap();
            assert_eq!(stats.channels, n);
        }
    }
}

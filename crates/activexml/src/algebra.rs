//! The ActiveXML algebra over XML streams (Section 3.3 of the paper).
//!
//! Algebraic expressions describe where data lives and where computation
//! happens.  The alphabet: document names `d@p`, services `s@p` of some
//! arity, node identifiers `♯x@p`, labels `l⟨…⟩` and the three particular
//! services `eval`, `send` and `receive` that model distributed evaluation.
//! Services may be *generic* (`s@any`), to be replaced by concrete ones at
//! deployment time.
//!
//! Execution state is part of the syntax: `s@p` is an unevaluated call,
//! `◦s@p` an executing one and `•s@p` a finished one.

use std::fmt;

use p2pmon_xmlkit::Element;

/// A peer reference: a concrete peer identifier or the generic `any`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PeerRef {
    /// `s@any` — the service can be offered by any peer with the capability.
    Any,
    /// A concrete peer identifier such as `meteo.com`.
    Peer(String),
}

impl PeerRef {
    /// Creates a concrete peer reference.
    pub fn peer(name: impl Into<String>) -> Self {
        PeerRef::Peer(name.into())
    }

    /// Returns the concrete peer name, if any.
    pub fn as_peer(&self) -> Option<&str> {
        match self {
            PeerRef::Peer(p) => Some(p),
            PeerRef::Any => None,
        }
    }

    /// True when the reference is still generic.
    pub fn is_any(&self) -> bool {
        matches!(self, PeerRef::Any)
    }
}

impl fmt::Display for PeerRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PeerRef::Any => f.write_str("any"),
            PeerRef::Peer(p) => f.write_str(p),
        }
    }
}

/// The execution state of a service occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ServiceState {
    /// `s@p` — not yet started.
    #[default]
    Pending,
    /// `◦s@p` — executing.
    Running,
    /// `•s@p` — finished.
    Finished,
}

impl ServiceState {
    fn prefix(&self) -> &'static str {
        match self {
            ServiceState::Pending => "",
            ServiceState::Running => "◦",
            ServiceState::Finished => "•",
        }
    }
}

/// A node identifier `♯x@p`: the place in a document at peer `peer` where a
/// stream of results is expected.  Node identifiers are how the rewrite
/// rules connect a `receive` at the consumer with a `send` at the producer;
/// operationally they correspond to channels.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NodeRef {
    /// Local node name (`X`, `Y`, `M` in the paper's example).
    pub node: String,
    /// Peer hosting the node.
    pub peer: String,
}

impl NodeRef {
    /// Creates a node reference.
    pub fn new(node: impl Into<String>, peer: impl Into<String>) -> Self {
        NodeRef {
            node: node.into(),
            peer: peer.into(),
        }
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "♯{}@{}", self.node, self.peer)
    }
}

/// Errors raised while manipulating algebraic expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlgebraError {
    /// Description of the problem.
    pub message: String,
}

impl AlgebraError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        AlgebraError {
            message: message.into(),
        }
    }
}

impl fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "algebra error: {}", self.message)
    }
}

impl std::error::Error for AlgebraError {}

/// An algebraic expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `l⟨e1, …, ek⟩` — an element labelled `label` with sub-expressions.
    Label {
        /// The element label.
        label: String,
        /// Sub-expressions.
        children: Vec<Expr>,
    },
    /// Literal XML data already materialised.
    Data(Element),
    /// `d@p` — a document at a peer.
    Document {
        /// Document name.
        name: String,
        /// Hosting peer.
        peer: PeerRef,
    },
    /// `s@p(e1, …, ek)` — a service call at a peer.
    Service {
        /// Service name (`σF`, `⋈P`, `∪`, `ΠT`, `publisher`, an alerter name, …).
        name: String,
        /// Hosting peer, possibly generic.
        peer: PeerRef,
        /// Execution state.
        state: ServiceState,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `eval@p(e)` — peer `p` evaluates `e`.
    Eval {
        /// Evaluating peer.
        peer: PeerRef,
        /// Expression to evaluate.
        expr: Box<Expr>,
    },
    /// `send@p(n@p', e)` — peer `p` sends the results of `e` to node `n@p'`.
    Send {
        /// Sending peer.
        peer: PeerRef,
        /// Destination node.
        target: NodeRef,
        /// Expression producing the data to send.
        expr: Box<Expr>,
    },
    /// `♯x@p : ◦receive()` — peer `p` accepts data into node `x`.
    Receive {
        /// The node receiving the data.
        node: NodeRef,
    },
    /// A free variable (used while compiling P2PML before binding).
    Var(String),
}

impl Expr {
    /// Convenience constructor for a pending service call.
    pub fn service(name: impl Into<String>, peer: PeerRef, args: Vec<Expr>) -> Expr {
        Expr::Service {
            name: name.into(),
            peer,
            state: ServiceState::Pending,
            args,
        }
    }

    /// Convenience constructor for a generic (`@any`) service call.
    pub fn generic(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::service(name, PeerRef::Any, args)
    }

    /// Convenience constructor for `eval@p(e)`.
    pub fn eval(peer: impl Into<String>, expr: Expr) -> Expr {
        Expr::Eval {
            peer: PeerRef::peer(peer),
            expr: Box::new(expr),
        }
    }

    /// Number of nodes in the expression tree.
    pub fn size(&self) -> usize {
        1 + self.children().iter().map(|c| c.size()).sum::<usize>()
    }

    /// Immediate sub-expressions.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Label { children, .. } => children.iter().collect(),
            Expr::Service { args, .. } => args.iter().collect(),
            Expr::Eval { expr, .. } | Expr::Send { expr, .. } => vec![expr.as_ref()],
            Expr::Data(_) | Expr::Document { .. } | Expr::Receive { .. } | Expr::Var(_) => {
                Vec::new()
            }
        }
    }

    /// All concrete peers mentioned anywhere in the expression.
    pub fn peers(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_peers(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_peers(&self, out: &mut Vec<String>) {
        match self {
            Expr::Document { peer, .. } => {
                if let Some(p) = peer.as_peer() {
                    out.push(p.to_string());
                }
            }
            Expr::Service { peer, args, .. } => {
                if let Some(p) = peer.as_peer() {
                    out.push(p.to_string());
                }
                for a in args {
                    a.collect_peers(out);
                }
            }
            Expr::Eval { peer, expr } => {
                if let Some(p) = peer.as_peer() {
                    out.push(p.to_string());
                }
                expr.collect_peers(out);
            }
            Expr::Send { peer, target, expr } => {
                if let Some(p) = peer.as_peer() {
                    out.push(p.to_string());
                }
                out.push(target.peer.clone());
                expr.collect_peers(out);
            }
            Expr::Receive { node } => out.push(node.peer.clone()),
            Expr::Label { children, .. } => {
                for c in children {
                    c.collect_peers(out);
                }
            }
            Expr::Data(_) | Expr::Var(_) => {}
        }
    }

    /// True when every service in the expression is concrete (no `@any`).
    pub fn is_concrete(&self) -> bool {
        match self {
            Expr::Service { peer, args, .. } => {
                !peer.is_any() && args.iter().all(Expr::is_concrete)
            }
            Expr::Document { peer, .. } => !peer.is_any(),
            Expr::Eval { peer, expr } => !peer.is_any() && expr.is_concrete(),
            Expr::Send { peer, expr, .. } => !peer.is_any() && expr.is_concrete(),
            Expr::Label { children, .. } => children.iter().all(Expr::is_concrete),
            Expr::Data(_) | Expr::Receive { .. } | Expr::Var(_) => true,
        }
    }

    /// Replaces every generic (`@any`) service and document with the given
    /// concrete peer.  This is the simplest placement strategy; the optimizer
    /// in `p2pmon-core` makes finer-grained decisions before calling this for
    /// anything still generic.
    pub fn concretize(&mut self, default_peer: &str) {
        match self {
            Expr::Service { peer, args, .. } => {
                if peer.is_any() {
                    *peer = PeerRef::peer(default_peer);
                }
                for a in args {
                    a.concretize(default_peer);
                }
            }
            Expr::Document { peer, .. } => {
                if peer.is_any() {
                    *peer = PeerRef::peer(default_peer);
                }
            }
            Expr::Eval { peer, expr } => {
                if peer.is_any() {
                    *peer = PeerRef::peer(default_peer);
                }
                expr.concretize(default_peer);
            }
            Expr::Send { peer, expr, .. } => {
                if peer.is_any() {
                    *peer = PeerRef::peer(default_peer);
                }
                expr.concretize(default_peer);
            }
            Expr::Label { children, .. } => {
                for c in children {
                    c.concretize(default_peer);
                }
            }
            Expr::Data(_) | Expr::Receive { .. } | Expr::Var(_) => {}
        }
    }

    /// Marks the outermost service of the expression as running (`◦`).
    pub fn mark_running(&mut self) {
        if let Expr::Service { state, .. } = self {
            *state = ServiceState::Running;
        }
    }
}

impl fmt::Display for Expr {
    /// Renders the expression in the paper's notation, e.g.
    /// `eval@p(publisher@p(ΠT@meteo.com(...)))`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Label { label, children } => {
                write!(f, "{label}⟨")?;
                write_list(f, children)?;
                f.write_str("⟩")
            }
            Expr::Data(e) => write!(f, "«{}»", e.name),
            Expr::Document { name, peer } => write!(f, "{name}@{peer}"),
            Expr::Service {
                name,
                peer,
                state,
                args,
            } => {
                write!(f, "{}{}@{}(", state.prefix(), name, peer)?;
                write_list(f, args)?;
                f.write_str(")")
            }
            Expr::Eval { peer, expr } => write!(f, "eval@{peer}({expr})"),
            Expr::Send { peer, target, expr } => {
                write!(f, "send@{peer}({target}, {expr})")
            }
            Expr::Receive { node } => write!(f, "{node} : ◦receive()"),
            Expr::Var(v) => write!(f, "${v}"),
        }
    }
}

fn write_list(f: &mut fmt::Formatter<'_>, exprs: &[Expr]) -> fmt::Result {
    for (i, e) in exprs.iter().enumerate() {
        if i > 0 {
            f.write_str(", ")?;
        }
        write!(f, "{e}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's Section 3.3 example plan (before placement):
    /// `eval@p(publisher(ΠT(⋈P(∪(σF(out@a.com), σF(out@b.com)), σF'(in@meteo.com)))))`.
    pub(crate) fn meteo_plan() -> Expr {
        let out_a = Expr::service("outCOM", PeerRef::peer("a.com"), vec![]);
        let out_b = Expr::service("outCOM", PeerRef::peer("b.com"), vec![]);
        let in_m = Expr::service("inCOM", PeerRef::peer("meteo.com"), vec![]);
        let sigma_a = Expr::generic("sigma_F", vec![out_a]);
        let sigma_b = Expr::generic("sigma_F", vec![out_b]);
        let union = Expr::generic("union", vec![sigma_a, sigma_b]);
        let sigma_in = Expr::generic("sigma_F2", vec![in_m]);
        let join = Expr::generic("join_P", vec![union, sigma_in]);
        let pi = Expr::generic("pi_T", vec![join]);
        let publisher = Expr::generic("publisher", vec![pi]);
        Expr::eval("p", publisher)
    }

    #[test]
    fn size_and_peers() {
        let plan = meteo_plan();
        assert_eq!(plan.size(), 11);
        assert_eq!(plan.peers(), vec!["a.com", "b.com", "meteo.com", "p"]);
    }

    #[test]
    fn generic_services_are_not_concrete_until_concretized() {
        let mut plan = meteo_plan();
        assert!(!plan.is_concrete());
        plan.concretize("meteo.com");
        assert!(plan.is_concrete());
        assert!(plan.peers().contains(&"meteo.com".to_string()));
    }

    #[test]
    fn display_uses_paper_notation() {
        let plan = meteo_plan();
        let s = plan.to_string();
        assert!(s.starts_with("eval@p(publisher@any("), "{s}");
        assert!(s.contains("outCOM@a.com()"), "{s}");
    }

    #[test]
    fn running_state_prefix() {
        let mut svc = Expr::service("join_P", PeerRef::peer("meteo.com"), vec![]);
        svc.mark_running();
        assert!(svc.to_string().starts_with("◦join_P@meteo.com"));
    }

    #[test]
    fn node_ref_display() {
        assert_eq!(NodeRef::new("X", "b.com").to_string(), "♯X@b.com");
    }

    #[test]
    fn receive_display() {
        let r = Expr::Receive {
            node: NodeRef::new("M", "p"),
        };
        assert_eq!(r.to_string(), "♯M@p : ◦receive()");
    }
}

//! # p2pmon-activexml
//!
//! The ActiveXML substrate of the P2P Monitor reproduction.
//!
//! The paper builds its monitoring system on top of the ActiveXML framework
//! (\[4\], \[5\] in the paper): documents may embed *service-call elements*
//! (`sc`), streams are sequences of (Active)XML trees, and distributed
//! evaluation is expressed in an *algebra* whose rewrite rules introduce
//! `eval`, `send` and `receive` services to ship work between peers.
//!
//! This crate provides:
//!
//! * [`ServiceCall`] — the `sc` element: which service, at which peer, with
//!   which parameters, and how to merge its result back into the document
//!   ([`sc::MergeMode`]).  The Filter's lazy-evaluation optimisation
//!   (Section 4, "Web service calls") relies on being able to recognise these
//!   elements without materialising them.
//! * [`AxmlDocument`] and [`Repository`] — a small versioned document store;
//!   every update produces an update event consumed by the ActiveXML alerter.
//! * [`algebra`] — the algebraic expressions of Section 3.3
//!   (`l⟨e…⟩`, `s@p(e…)`, `d@p`, `eval@p(e)`, `send@p(n@p', e)`,
//!   `receive@p()`), peer-located or generic (`s@any`) services, and service
//!   execution states (`◦s@p`, `•s@p`).
//! * [`rewrite`] — the rewrite rules: local service invocation, external
//!   service invocation (delegation through `send`/`receive` pairs) and the
//!   query-decomposition rule used by the optimizer, plus the extraction of
//!   per-peer task groups exactly as in the Section 3.4 example.

pub mod algebra;
pub mod repository;
pub mod rewrite;
pub mod sc;

pub use algebra::{AlgebraError, Expr, PeerRef, ServiceState};
pub use repository::{AxmlDocument, Repository, UpdateEvent, UpdateKind};
pub use rewrite::{extract_peer_tasks, rewrite_distributed, PeerTask, RewriteStats};
pub use sc::{MergeMode, ServiceCall};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_api_round_trip() {
        // A document with an embedded service call, registered in a repository,
        // produces an update event and the sc element is recognisable.
        let xml =
            r#"<root attr1="x"><sc service="storage" address="site"><parameters/></sc></root>"#;
        let doc = p2pmon_xmlkit::parse(xml).unwrap();
        let calls = ServiceCall::find_in(&doc);
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].service, "storage");

        let mut repo = Repository::new("p1");
        repo.insert("doc1", doc);
        assert_eq!(repo.events().len(), 1);
    }
}

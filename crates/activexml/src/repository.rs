//! A versioned ActiveXML document repository.
//!
//! The paper's ActiveXML alerter "detects updates to the ActiveXML peer's
//! repository".  This module is that repository: a named collection of
//! documents with insert/replace/delete operations, a version counter and an
//! update log that the alerter drains into its output stream.

use std::collections::BTreeMap;

use p2pmon_xmlkit::{diff_elements, DiffOp, Element};

/// The kind of update applied to a document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// A new document was inserted.
    Insert,
    /// An existing document was replaced with new content.
    Replace,
    /// A document was deleted.
    Delete,
}

impl UpdateKind {
    /// Stable string tag used in alert XML.
    pub fn as_str(&self) -> &'static str {
        match self {
            UpdateKind::Insert => "insert",
            UpdateKind::Replace => "replace",
            UpdateKind::Delete => "delete",
        }
    }
}

/// An update event recorded by the repository.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateEvent {
    /// Monotonically increasing sequence number, repository-wide.
    pub sequence: u64,
    /// The peer owning the repository.
    pub peer: String,
    /// Name of the affected document.
    pub document: String,
    /// What happened.
    pub kind: UpdateKind,
    /// Version of the document after the update (1 for first insert).
    pub version: u64,
    /// Structural delta against the previous version (empty for inserts and
    /// deletes).
    pub delta: Vec<DiffOp>,
}

impl UpdateEvent {
    /// Renders the event as the alert XML the ActiveXML alerter emits.
    pub fn to_alert(&self) -> Element {
        let mut alert = Element::new("axmlUpdate");
        alert.set_attr("peer", self.peer.clone());
        alert.set_attr("document", self.document.clone());
        alert.set_attr("kind", self.kind.as_str());
        alert.set_attr("version", self.version.to_string());
        alert.set_attr("sequence", self.sequence.to_string());
        if !self.delta.is_empty() {
            let mut delta = Element::new("delta");
            for op in &self.delta {
                let mut change = Element::new("change");
                change.set_attr("kind", op.kind());
                delta.push_element(change);
            }
            alert.push_element(delta);
        }
        alert
    }
}

/// A stored document with its version.
#[derive(Debug, Clone, PartialEq)]
pub struct AxmlDocument {
    /// Document name (unique within the repository).
    pub name: String,
    /// Current content.
    pub content: Element,
    /// Version, starting at 1.
    pub version: u64,
}

/// A named collection of ActiveXML documents hosted by one peer.
#[derive(Debug, Clone)]
pub struct Repository {
    peer: String,
    documents: BTreeMap<String, AxmlDocument>,
    events: Vec<UpdateEvent>,
    next_sequence: u64,
}

impl Repository {
    /// Creates an empty repository for the given peer.
    pub fn new(peer: impl Into<String>) -> Self {
        Repository {
            peer: peer.into(),
            documents: BTreeMap::new(),
            events: Vec::new(),
            next_sequence: 0,
        }
    }

    /// The owning peer's identifier.
    pub fn peer(&self) -> &str {
        &self.peer
    }

    /// Number of documents currently stored.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// True when the repository holds no documents.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Looks up a document.
    pub fn get(&self, name: &str) -> Option<&AxmlDocument> {
        self.documents.get(name)
    }

    /// All document names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.documents.keys().map(String::as_str).collect()
    }

    /// Inserts a new document or replaces the existing one, recording the
    /// corresponding update event (with a structural delta on replace).
    pub fn insert(&mut self, name: impl Into<String>, content: Element) -> &UpdateEvent {
        let name = name.into();
        let (kind, version, delta) = match self.documents.get(&name) {
            Some(existing) => (
                UpdateKind::Replace,
                existing.version + 1,
                diff_elements(&existing.content, &content),
            ),
            None => (UpdateKind::Insert, 1, Vec::new()),
        };
        self.documents.insert(
            name.clone(),
            AxmlDocument {
                name: name.clone(),
                content,
                version,
            },
        );
        self.record(name, kind, version, delta)
    }

    /// Deletes a document; returns `false` when it did not exist.
    pub fn delete(&mut self, name: &str) -> bool {
        match self.documents.remove(name) {
            Some(doc) => {
                self.record(
                    name.to_string(),
                    UpdateKind::Delete,
                    doc.version,
                    Vec::new(),
                );
                true
            }
            None => false,
        }
    }

    fn record(
        &mut self,
        document: String,
        kind: UpdateKind,
        version: u64,
        delta: Vec<DiffOp>,
    ) -> &UpdateEvent {
        let event = UpdateEvent {
            sequence: self.next_sequence,
            peer: self.peer.clone(),
            document,
            kind,
            version,
            delta,
        };
        self.next_sequence += 1;
        self.events.push(event);
        self.events.last().expect("just pushed")
    }

    /// All events recorded so far (the alerter typically drains them instead).
    pub fn events(&self) -> &[UpdateEvent] {
        &self.events
    }

    /// Removes and returns all pending events; this is what the ActiveXML
    /// alerter calls on each tick.
    pub fn drain_events(&mut self) -> Vec<UpdateEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmon_xmlkit::parse;

    #[test]
    fn insert_replace_delete_lifecycle() {
        let mut repo = Repository::new("edos-server");
        repo.insert(
            "packages",
            parse("<packages><pkg name=\"a\"/></packages>").unwrap(),
        );
        repo.insert(
            "packages",
            parse("<packages><pkg name=\"a\"/><pkg name=\"b\"/></packages>").unwrap(),
        );
        assert!(repo.delete("packages"));
        assert!(!repo.delete("packages"));

        let events = repo.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, UpdateKind::Insert);
        assert_eq!(events[0].version, 1);
        assert_eq!(events[1].kind, UpdateKind::Replace);
        assert_eq!(events[1].version, 2);
        assert!(!events[1].delta.is_empty(), "replace carries a delta");
        assert_eq!(events[2].kind, UpdateKind::Delete);
        assert!(repo.is_empty());
    }

    #[test]
    fn sequences_are_monotonic_across_documents() {
        let mut repo = Repository::new("p");
        repo.insert("a", Element::new("a"));
        repo.insert("b", Element::new("b"));
        repo.insert("a", Element::new("a2"));
        let seqs: Vec<u64> = repo.events().iter().map(|e| e.sequence).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }

    #[test]
    fn drain_empties_the_log() {
        let mut repo = Repository::new("p");
        repo.insert("a", Element::new("a"));
        assert_eq!(repo.drain_events().len(), 1);
        assert!(repo.events().is_empty());
    }

    #[test]
    fn alert_xml_carries_metadata() {
        let mut repo = Repository::new("p7");
        repo.insert("doc", parse("<d><x>1</x></d>").unwrap());
        repo.insert("doc", parse("<d><x>2</x></d>").unwrap());
        let alert = repo.events()[1].to_alert();
        assert_eq!(alert.name, "axmlUpdate");
        assert_eq!(alert.attr("peer"), Some("p7"));
        assert_eq!(alert.attr("kind"), Some("replace"));
        assert_eq!(alert.attr("version"), Some("2"));
        assert!(alert.child("delta").is_some());
    }

    #[test]
    fn get_and_names() {
        let mut repo = Repository::new("p");
        repo.insert("z", Element::new("z"));
        repo.insert("a", Element::new("a"));
        assert_eq!(repo.names(), vec!["a", "z"]);
        assert_eq!(repo.get("z").unwrap().version, 1);
        assert!(repo.get("missing").is_none());
    }
}

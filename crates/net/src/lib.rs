//! # p2pmon-net
//!
//! The network substrate of the reproduction.
//!
//! The paper's P2PM runs over real HTTP/SOAP connections between Web
//! application servers.  Reproducing the *evaluation claims* (how many
//! messages and bytes cross the network under different plans, how stream
//! reuse reduces traffic, how the DHT lookup cost grows) does not need real
//! sockets — it needs a transport whose message counts, byte counts, latencies
//! and failures are observable and reproducible.  This crate is that
//! substrate: a deterministic, discrete-event simulated network.
//!
//! * [`Network`] — the simulator: peers, in-flight messages ordered by
//!   delivery time, a logical clock in milliseconds, per-link statistics and
//!   failure injection.
//! * [`Message`] — an envelope carrying one XML tree between two peers,
//!   optionally tagged with the channel it belongs to.
//! * [`LatencyModel`] — constant, per-link or seeded-random latencies.
//! * [`NetworkStats`] — message/byte counters, total and per link, used by
//!   experiments E6–E8.
//!
//! Substitution note (DESIGN.md §2): replacing Axis/Tomcat with this
//! simulator preserves the quantities the paper reasons about (who talks to
//! whom, how often, with how many bytes) while making every run reproducible
//! on a laptop.

pub mod latency;
pub mod message;
pub mod network;
pub mod stats;

pub use latency::LatencyModel;
pub use message::Message;
pub use network::{Network, NetworkConfig};
pub use stats::{DropBreakdown, DropCause, LinkStats, NetworkStats, PeerTraffic};

/// Peers are identified by their DNS-like name, as in the paper
/// (`a.com`, `meteo.com`, …).  The name is interned ([`p2pmon_xmlkit::Name`]):
/// a `PeerId` is `Copy`, compares and hashes as a single integer, and still
/// collates alphabetically — so per-peer maps iterate deterministically and
/// the delivery hot path never allocates peer-name strings.
pub type PeerId = p2pmon_xmlkit::Name;

#[cfg(test)]
mod lib_tests {
    use super::*;
    use p2pmon_xmlkit::Element;

    #[test]
    fn send_and_deliver_round_trip() {
        let mut net = Network::new(NetworkConfig::default());
        net.add_peer("a.com");
        net.add_peer("b.com");
        net.send("a.com", "b.com", None, Element::new("ping"));
        net.run_until_idle();
        let delivered = net.take_inbox("b.com");
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload.name, "ping");
        assert_eq!(net.stats().total_messages, 1);
    }
}

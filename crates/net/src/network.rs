//! The discrete-event network simulator.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use p2pmon_streams::ChannelId;
use p2pmon_xmlkit::Element;

use crate::latency::{LatencyModel, LatencySampler};
use crate::message::Message;
use crate::stats::{DropCause, NetworkStats};
use crate::PeerId;

/// Configuration of a simulated network.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Latency model for all links.
    pub latency: LatencyModel,
    /// Probability in `[0, 1]` that any message is silently dropped
    /// (failure injection; 0 by default).
    pub drop_probability: f64,
    /// Seed for the drop-decision generator.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            latency: LatencyModel::default(),
            drop_probability: 0.0,
            seed: 0,
        }
    }
}

/// The simulated network: peers, in-flight messages and a logical clock.
#[derive(Debug)]
pub struct Network {
    peers: BTreeSet<PeerId>,
    down: BTreeSet<PeerId>,
    inboxes: BTreeMap<PeerId, VecDeque<Message>>,
    /// In-flight messages keyed by delivery time, then message id (total
    /// order ⇒ deterministic delivery order).
    in_flight: BTreeMap<(u64, u64), Message>,
    clock: u64,
    next_message_id: u64,
    latency: LatencySampler,
    drop_probability: f64,
    /// Active partition: peer → group index.  Peers in different groups
    /// cannot exchange messages; peers not named by any group share an
    /// implicit extra group (they stay connected to each other, and are cut
    /// off from every explicit group).  Empty = fully connected.
    partition: BTreeMap<PeerId, usize>,
    rng: StdRng,
    stats: NetworkStats,
}

impl Network {
    /// Creates an empty network.
    pub fn new(config: NetworkConfig) -> Self {
        Network {
            peers: BTreeSet::new(),
            down: BTreeSet::new(),
            inboxes: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            clock: 0,
            next_message_id: 0,
            latency: LatencySampler::new(config.latency),
            drop_probability: config.drop_probability.clamp(0.0, 1.0),
            partition: BTreeMap::new(),
            rng: StdRng::seed_from_u64(config.seed),
            stats: NetworkStats::default(),
        }
    }

    /// Registers a peer.  Registering an existing peer is a no-op.
    pub fn add_peer(&mut self, peer: impl Into<PeerId>) {
        let peer = peer.into();
        self.inboxes.entry(peer).or_default();
        self.peers.insert(peer);
    }

    /// All registered peers, sorted.
    pub fn peers(&self) -> Vec<&str> {
        self.peers.iter().map(|p| p.as_str()).collect()
    }

    /// True when the peer is registered.
    pub fn has_peer(&self, peer: &str) -> bool {
        self.peers.contains(&PeerId::from(peer))
    }

    /// Marks a peer as failed: messages to it are dropped until it recovers.
    pub fn fail_peer(&mut self, peer: &str) {
        let peer = PeerId::from(peer);
        if self.peers.contains(&peer) {
            self.down.insert(peer);
        }
    }

    /// Recovers a failed peer.
    pub fn recover_peer(&mut self, peer: &str) {
        self.down.remove(&PeerId::from(peer));
    }

    /// True when the peer is currently failed.
    pub fn is_down(&self, peer: &str) -> bool {
        !self.down.is_empty() && self.down.contains(&PeerId::from(peer))
    }

    /// True when any peer is currently failed (lets dispatch skip its
    /// per-round downed-peer sweep on the healthy fast path).
    pub fn any_down(&self) -> bool {
        !self.down.is_empty()
    }

    /// Splits the network into isolated groups: messages between peers of
    /// different groups are dropped (and counted, with cause
    /// [`DropCause::Partition`]) at send time and — for messages already in
    /// flight when the partition lands — at delivery time, exactly like
    /// traffic toward a peer that fails mid-flight.  Peers not named by any
    /// group form one implicit extra group of their own.  Partitions compose
    /// with `fail_peer` and `drop_probability`; calling `partition` again
    /// replaces the previous grouping, [`Network::heal`] removes it.
    pub fn partition(&mut self, groups: &[Vec<&str>]) {
        self.partition.clear();
        for (index, group) in groups.iter().enumerate() {
            for peer in group {
                self.partition.insert(PeerId::from(*peer), index);
            }
        }
    }

    /// Removes the active partition: all groups can reach each other again.
    /// Messages dropped while it was active stay dropped (there is no
    /// retransmission in the simulator).
    pub fn heal(&mut self) {
        self.partition.clear();
    }

    /// True when a partition is currently active.
    pub fn is_partitioned(&self) -> bool {
        !self.partition.is_empty()
    }

    /// True when the active partition separates the two peers.  Unlisted
    /// peers share an implicit group, so two of them are never separated.
    pub fn is_cross_partition(&self, from: &str, to: &str) -> bool {
        self.blocked(PeerId::from(from), PeerId::from(to))
    }

    fn blocked(&self, from: PeerId, to: PeerId) -> bool {
        if self.partition.is_empty() || from == to {
            return false;
        }
        // Unlisted peers map to the same implicit group (`None`).
        self.partition.get(&from) != self.partition.get(&to)
    }

    /// The logical clock (ms).
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Advances the logical clock without delivering anything (alerters use
    /// this to space out the events they generate).
    pub fn advance_clock(&mut self, delta_ms: u64) {
        self.clock += delta_ms;
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Changes the random-loss probability mid-run (drop-burst fault
    /// injection).  The seeded drop-decision generator is only consulted —
    /// and only advanced — while the probability is above zero, so a burst
    /// window's decisions replay bit-identically from the network seed.
    pub fn set_drop_probability(&mut self, probability: f64) {
        self.drop_probability = probability.clamp(0.0, 1.0);
    }

    /// The current random-loss probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Records messages avoided by channel multicast (see
    /// [`NetworkStats::multicast_saved_messages`]).
    pub fn record_multicast_saving(&mut self, saved: u64) {
        if saved > 0 {
            self.stats.record_multicast_saving(saved);
        }
    }

    /// Records messages a replica peer forwarded on the origin's behalf (see
    /// [`NetworkStats::replica_forwarded_messages`]).
    pub fn record_replica_forward(&mut self, forwarded: u64) {
        if forwarded > 0 {
            self.stats.record_replica_forward(forwarded);
        }
    }

    /// Expected latency of a link — the proximity measure used by replica
    /// selection.
    pub fn expected_latency(&self, from: &str, to: &str) -> u64 {
        self.latency.expected(from, to)
    }

    /// Number of messages currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Sends an XML payload from `from` to `to`.  Returns the message id, or
    /// `None` when the message was dropped (failure injection, unknown or
    /// failed destination).
    ///
    /// The payload may be owned (wrapped once) or already shared — a channel
    /// multicast passes the same `Arc` to every destination, so enqueuing is
    /// a reference-count bump, not a tree copy.
    pub fn send(
        &mut self,
        from: impl Into<PeerId>,
        to: impl Into<PeerId>,
        channel: Option<ChannelId>,
        payload: impl Into<Arc<Element>>,
    ) -> Option<u64> {
        let from = from.into();
        let to = to.into();
        if !self.peers.contains(&from) || !self.peers.contains(&to) {
            self.stats.record_drop(from, to, DropCause::UnknownPeer);
            return None;
        }
        if !self.down.is_empty() && (self.down.contains(&from) || self.down.contains(&to)) {
            self.stats.record_drop(from, to, DropCause::PeerDown);
            return None;
        }
        if self.blocked(from, to) {
            self.stats.record_drop(from, to, DropCause::Partition);
            return None;
        }
        if self.drop_probability > 0.0 && self.rng.gen::<f64>() < self.drop_probability {
            self.stats.record_drop(from, to, DropCause::Random);
            return None;
        }
        let payload = payload.into();
        let bytes = payload.byte_size();
        let latency = if from == to {
            0
        } else {
            self.latency.sample(&from, &to)
        };
        let id = self.next_message_id;
        self.next_message_id += 1;
        let message = Message {
            id,
            from,
            to,
            channel,
            payload,
            bytes,
            sent_at: self.clock,
            deliver_at: self.clock + latency,
        };
        self.in_flight.insert((message.deliver_at, id), message);
        Some(id)
    }

    /// Multicasts a payload to several peers (one message per subscriber, as
    /// a channel publication does; all messages share the same payload tree).
    /// Returns the number of messages actually sent.
    pub fn multicast(
        &mut self,
        from: &str,
        to: &[PeerId],
        channel: Option<ChannelId>,
        payload: &Arc<Element>,
    ) -> usize {
        let from = PeerId::from(from);
        let mut sent = 0;
        for &peer in to {
            if self
                .send(from, peer, channel, Arc::clone(payload))
                .is_some()
            {
                sent += 1;
            }
        }
        sent
    }

    /// Delivers the next in-flight message (advancing the clock to its
    /// delivery time).  Returns the recipient, or `None` when nothing is in
    /// flight.
    pub fn step(&mut self) -> Option<PeerId> {
        let (&key, _) = self.in_flight.iter().next()?;
        let message = self.in_flight.remove(&key).expect("key just observed");
        self.clock = self.clock.max(message.deliver_at);
        if !self.down.is_empty() && self.down.contains(&message.to) {
            self.stats
                .record_drop(message.from, message.to, DropCause::PeerDown);
            return Some(message.to);
        }
        // A partition that landed while the message was in flight kills it
        // at the boundary, like a failed destination would.
        if self.blocked(message.from, message.to) {
            self.stats
                .record_drop(message.from, message.to, DropCause::Partition);
            return Some(message.to);
        }
        self.stats.record_delivery(
            message.from,
            message.to,
            message.bytes,
            message.is_channel_traffic(),
        );
        let to = message.to;
        self.inboxes.entry(to).or_default().push_back(message);
        Some(to)
    }

    /// Delivers every message currently in flight (and any that those
    /// deliveries do not generate — the caller's runtime loop is responsible
    /// for reacting and sending more).  Returns the number delivered.
    pub fn run_until_idle(&mut self) -> usize {
        let mut delivered = 0;
        while !self.in_flight.is_empty() {
            self.step();
            delivered += 1;
        }
        delivered
    }

    /// Delivers messages whose delivery time is ≤ `deadline`, advancing the
    /// clock to `deadline` at most.
    pub fn run_until(&mut self, deadline: u64) -> usize {
        let mut delivered = 0;
        loop {
            match self.in_flight.iter().next() {
                Some((&(t, _), _)) if t <= deadline => {
                    self.step();
                    delivered += 1;
                }
                _ => break,
            }
        }
        self.clock = self.clock.max(deadline);
        delivered
    }

    /// Drains and returns the inbox of a peer.
    pub fn take_inbox(&mut self, peer: &str) -> Vec<Message> {
        self.inboxes
            .get_mut(&PeerId::from(peer))
            .map(|q| q.drain(..).collect())
            .unwrap_or_default()
    }

    /// Number of undelivered-to-application messages waiting in a peer's
    /// inbox.
    pub fn inbox_len(&self, peer: &str) -> usize {
        self.inboxes
            .get(&PeerId::from(peer))
            .map(VecDeque::len)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> Network {
        let mut n = Network::new(NetworkConfig::default());
        for p in ["a.com", "b.com", "meteo.com", "p"] {
            n.add_peer(p);
        }
        n
    }

    #[test]
    fn messages_are_delivered_in_time_order() {
        let mut n = Network::new(NetworkConfig {
            latency: LatencyModel::PerLink {
                links: [
                    (("a.com".into(), "p".into()), 100),
                    (("b.com".into(), "p".into()), 10),
                ]
                .into_iter()
                .collect(),
                default: 50,
            },
            ..NetworkConfig::default()
        });
        n.add_peer("a.com");
        n.add_peer("b.com");
        n.add_peer("p");
        n.send("a.com", "p", None, Element::new("slow"));
        n.send("b.com", "p", None, Element::new("fast"));
        n.run_until_idle();
        let inbox = n.take_inbox("p");
        assert_eq!(inbox[0].payload.name, "fast");
        assert_eq!(inbox[1].payload.name, "slow");
        assert_eq!(n.now(), 100);
    }

    #[test]
    fn local_delivery_is_instant() {
        let mut n = net();
        n.send("p", "p", None, Element::new("loop"));
        n.step();
        assert_eq!(n.now(), 0);
        assert_eq!(n.inbox_len("p"), 1);
    }

    #[test]
    fn unknown_peer_messages_are_dropped() {
        let mut n = net();
        assert!(n
            .send("a.com", "nowhere.com", None, Element::new("x"))
            .is_none());
        assert_eq!(n.stats().dropped_messages, 1);
    }

    #[test]
    fn failed_peer_drops_traffic_until_recovery() {
        let mut n = net();
        n.fail_peer("meteo.com");
        assert!(n.is_down("meteo.com"));
        assert!(n
            .send("a.com", "meteo.com", None, Element::new("x"))
            .is_none());
        n.recover_peer("meteo.com");
        assert!(n
            .send("a.com", "meteo.com", None, Element::new("x"))
            .is_some());
        n.run_until_idle();
        assert_eq!(n.inbox_len("meteo.com"), 1);
    }

    #[test]
    fn messages_in_flight_to_a_peer_that_fails_are_dropped_at_delivery() {
        let mut n = net();
        n.send("a.com", "meteo.com", None, Element::new("x"));
        n.fail_peer("meteo.com");
        n.run_until_idle();
        assert_eq!(n.inbox_len("meteo.com"), 0);
        assert_eq!(n.stats().dropped_messages, 1);
    }

    #[test]
    fn multicast_counts_and_channel_accounting() {
        let mut n = net();
        let ch = ChannelId::new("a.com", "X");
        let sent = n.multicast(
            "a.com",
            &["b.com".into(), "meteo.com".into()],
            Some(ch),
            &Arc::new(Element::new("item")),
        );
        assert_eq!(sent, 2);
        n.run_until_idle();
        assert_eq!(n.stats().channel_messages, 2);
        assert_eq!(n.stats().control_messages, 0);
    }

    #[test]
    fn multicast_of_one_shared_tree_charges_the_serialized_size_per_delivery() {
        // Zero-copy regression guard: the zero-copy send path shares ONE
        // `Arc<Element>` across every recipient, but the traffic model is
        // about what would cross real links — each delivered message must
        // still be charged the payload's full serialized size, not the Arc
        // clone's (zero) cost and not the tree's size only once.
        let mut n = net();
        let payload = Arc::new(Element::text_element("alert", "meteo.com says rain"));
        let per_message = payload.byte_size() as u64;
        let recipients: Vec<PeerId> = vec!["b.com".into(), "meteo.com".into(), "p".into()];
        let sent = n.multicast("a.com", &recipients, None, &payload);
        assert_eq!(sent, 3);
        n.run_until_idle();
        assert_eq!(
            n.stats().total_bytes,
            3 * per_message,
            "every delivery of a shared tree must be charged its serialized size"
        );
    }

    #[test]
    fn drop_probability_drops_roughly_that_fraction() {
        let mut n = Network::new(NetworkConfig {
            drop_probability: 0.5,
            seed: 7,
            ..NetworkConfig::default()
        });
        n.add_peer("a");
        n.add_peer("b");
        for _ in 0..200 {
            n.send("a", "b", None, Element::new("x"));
        }
        let dropped = n.stats().dropped_messages;
        assert!(dropped > 60 && dropped < 140, "dropped {dropped} of 200");
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut n = net(); // constant 10ms latency
        n.send("a.com", "p", None, Element::new("one"));
        n.advance_clock(100);
        n.send("a.com", "p", None, Element::new("two"));
        let delivered = n.run_until(50);
        assert_eq!(delivered, 1);
        assert_eq!(n.in_flight_count(), 1);
        // The clock had already been advanced to 100 by advance_clock, so the
        // deadline cannot move it backwards.
        assert_eq!(n.now(), 100);
    }

    #[test]
    fn partition_blocks_cross_group_delivery_and_heals() {
        let mut n = net();
        n.partition(&[vec!["a.com", "b.com"], vec!["meteo.com", "p"]]);
        assert!(n.is_partitioned());
        assert!(n.is_cross_partition("a.com", "p"));
        assert!(!n.is_cross_partition("a.com", "b.com"));
        // Intra-group traffic flows, cross-group traffic is dropped and
        // attributed to the partition.
        assert!(n.send("a.com", "b.com", None, Element::new("in")).is_some());
        assert!(n.send("a.com", "p", None, Element::new("out")).is_none());
        assert!(n.send("meteo.com", "p", None, Element::new("in")).is_some());
        assert_eq!(n.stats().dropped_messages, 1);
        assert_eq!(n.stats().dropped_by_cause.partition, 1);
        n.run_until_idle();
        assert_eq!(n.inbox_len("b.com"), 1);
        assert_eq!(n.inbox_len("p"), 1);
        n.heal();
        assert!(!n.is_partitioned());
        assert!(n.send("a.com", "p", None, Element::new("late")).is_some());
        n.run_until_idle();
        assert_eq!(n.inbox_len("p"), 2);
    }

    #[test]
    fn messages_in_flight_across_a_new_partition_drop_at_delivery() {
        let mut n = net();
        n.send("a.com", "p", None, Element::new("doomed"));
        n.partition(&[vec!["a.com"], vec!["p"]]);
        n.run_until_idle();
        assert_eq!(n.inbox_len("p"), 0);
        assert_eq!(n.stats().dropped_messages, 1);
        assert_eq!(n.stats().dropped_by_cause.partition, 1);
        let rollup = n.stats().per_peer();
        assert_eq!(rollup[&PeerId::from("p")].dropped_in, 1);
        assert_eq!(rollup[&PeerId::from("a.com")].dropped_out, 1);
    }

    #[test]
    fn unlisted_peers_share_the_implicit_group() {
        let mut n = net();
        n.partition(&[vec!["a.com"]]);
        // b.com and p are unlisted: connected to each other, cut from a.com.
        assert!(n.send("b.com", "p", None, Element::new("ok")).is_some());
        assert!(n.send("a.com", "b.com", None, Element::new("no")).is_none());
        assert!(!n.is_cross_partition("b.com", "p"));
        assert!(n.is_cross_partition("a.com", "p"));
    }

    #[test]
    fn partition_composes_with_failed_peers_and_random_loss() {
        let mut n = Network::new(NetworkConfig {
            drop_probability: 1.0,
            ..NetworkConfig::default()
        });
        for p in ["a", "b", "c"] {
            n.add_peer(p);
        }
        n.partition(&[vec!["a", "b"], vec!["c"]]);
        n.fail_peer("b");
        // Down beats partition beats random loss in attribution order.
        assert!(n.send("a", "b", None, Element::new("x")).is_none());
        assert!(n.send("a", "c", None, Element::new("x")).is_none());
        assert!(n.send("a", "a", None, Element::new("x")).is_none());
        let causes = n.stats().dropped_by_cause;
        assert_eq!(causes.peer_down, 1);
        assert_eq!(causes.partition, 1);
        assert_eq!(causes.random, 1);
        assert_eq!(causes.total(), n.stats().dropped_messages);
        // Recover + heal: only the seeded random loss remains in effect.
        n.recover_peer("b");
        n.heal();
        n.set_drop_probability(0.0);
        assert!(n.send("a", "b", None, Element::new("x")).is_some());
    }

    #[test]
    fn partitioned_replay_is_deterministic() {
        let run = || {
            let mut n = Network::new(NetworkConfig {
                latency: LatencyModel::Uniform {
                    min: 1,
                    max: 30,
                    seed: 11,
                },
                drop_probability: 0.2,
                seed: 11,
            });
            for p in ["a", "b", "c", "d"] {
                n.add_peer(p);
            }
            for i in 0..60 {
                if i == 20 {
                    n.partition(&[vec!["a", "b"], vec!["c", "d"]]);
                }
                if i == 40 {
                    n.heal();
                }
                n.send("a", "c", None, Element::text_element("m", i.to_string()));
                n.send("a", "b", None, Element::text_element("m", i.to_string()));
            }
            n.run_until_idle();
            (n.stats().clone(), n.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut n = Network::new(NetworkConfig {
                latency: LatencyModel::Uniform {
                    min: 1,
                    max: 30,
                    seed: 9,
                },
                drop_probability: 0.1,
                seed: 9,
            });
            n.add_peer("a");
            n.add_peer("b");
            for i in 0..50 {
                n.send("a", "b", None, Element::text_element("m", i.to_string()));
            }
            n.run_until_idle();
            (
                n.stats().total_messages,
                n.stats().dropped_messages,
                n.now(),
            )
        };
        assert_eq!(run(), run());
    }
}

//! Message envelopes.

use std::sync::Arc;

use p2pmon_streams::ChannelId;
use p2pmon_xmlkit::Element;

use crate::PeerId;

/// One message in flight (or delivered): an XML tree travelling from `from`
/// to `to`, possibly on behalf of a published channel.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Monotonically increasing message identifier (assigned by the network).
    pub id: u64,
    /// Sending peer.
    pub from: PeerId,
    /// Receiving peer.
    pub to: PeerId,
    /// The channel this message belongs to, when it is a channel publication
    /// (`None` for control traffic such as DHT lookups or plan deployment).
    pub channel: Option<ChannelId>,
    /// The XML payload.  Shared: a multicast of one tree to *n* destinations
    /// enqueues *n* envelopes around one reference-counted payload — `bytes`
    /// still charges the full serialized size to every delivery.
    pub payload: Arc<Element>,
    /// Payload size in bytes (computed once at send time).
    pub bytes: usize,
    /// Logical time at which the message was sent.
    pub sent_at: u64,
    /// Logical time at which the message is (or was) delivered.
    pub deliver_at: u64,
}

impl Message {
    /// Network latency experienced by this message.
    pub fn latency(&self) -> u64 {
        self.deliver_at.saturating_sub(self.sent_at)
    }

    /// True when this is channel traffic (data plane) rather than control
    /// traffic.
    pub fn is_channel_traffic(&self) -> bool {
        self.channel.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_and_kind() {
        let m = Message {
            id: 1,
            from: "a".into(),
            to: "b".into(),
            channel: Some(ChannelId::new("a", "X")),
            payload: Element::new("x").into(),
            bytes: 10,
            sent_at: 100,
            deliver_at: 130,
        };
        assert_eq!(m.latency(), 30);
        assert!(m.is_channel_traffic());
    }
}

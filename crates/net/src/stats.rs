//! Network traffic accounting.
//!
//! Experiments E6 (selection pushdown saves communications) and E7 (stream
//! reuse saves traffic) are stated by the paper as qualitative claims; the
//! benches measure them with these counters.

use std::collections::BTreeMap;

use crate::PeerId;

/// Counters for one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages delivered on the link.
    pub messages: u64,
    /// Payload bytes delivered on the link.
    pub bytes: u64,
    /// Messages dropped on the link (failure injection, downed endpoints,
    /// partitions).
    pub dropped: u64,
}

/// Why a message was dropped.  Every drop the simulator records carries one
/// of these causes, so fault harnesses can reconcile losses against the
/// fault that produced them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropCause {
    /// Sender or destination was never registered.
    UnknownPeer,
    /// Sender or destination was failed (`fail_peer`) at send or delivery.
    PeerDown,
    /// Sender and destination were in different partition groups at send or
    /// delivery.
    Partition,
    /// Seeded random loss (`drop_probability`).
    Random,
}

/// Dropped messages broken down by [`DropCause`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DropBreakdown {
    /// Drops to or from unregistered peers.
    pub unknown_peer: u64,
    /// Drops caused by a failed peer.
    pub peer_down: u64,
    /// Drops caused by a network partition.
    pub partition: u64,
    /// Seeded random losses.
    pub random: u64,
}

impl DropBreakdown {
    /// All drops in the breakdown.  Always equals the owning
    /// [`NetworkStats::dropped_messages`] — conservation harnesses assert
    /// this identity.
    pub fn total(&self) -> u64 {
        self.unknown_peer + self.peer_down + self.partition + self.random
    }

    fn record(&mut self, cause: DropCause) {
        match cause {
            DropCause::UnknownPeer => self.unknown_peer += 1,
            DropCause::PeerDown => self.peer_down += 1,
            DropCause::Partition => self.partition += 1,
            DropCause::Random => self.random += 1,
        }
    }
}

/// Per-peer traffic rollup (both directions of every link touching the peer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PeerTraffic {
    /// Messages delivered to the peer.
    pub messages_in: u64,
    /// Messages sent by the peer.
    pub messages_out: u64,
    /// Payload bytes delivered to the peer.
    pub bytes_in: u64,
    /// Payload bytes sent by the peer.
    pub bytes_out: u64,
    /// Messages lost on the way to the peer.
    pub dropped_in: u64,
    /// Messages the peer sent that were lost.
    pub dropped_out: u64,
    /// Of the peer's lost traffic (either direction), how much each fault
    /// class caused — `attributed_drops.total()` counts each loss once even
    /// when both endpoints belong to the peer (a local send).
    pub attributed_drops: DropBreakdown,
}

/// Aggregate traffic statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// All messages delivered.
    pub total_messages: u64,
    /// All payload bytes delivered.
    pub total_bytes: u64,
    /// Messages dropped by failure injection.
    pub dropped_messages: u64,
    /// The same drops broken down by cause.  `dropped_by_cause.total()` is
    /// always `dropped_messages` — the accounting identity chaos invariants
    /// check.
    pub dropped_by_cause: DropBreakdown,
    /// Per-peer drop attribution: every loss is charged to both endpoints
    /// (once when sender and destination coincide), so a fault harness can
    /// ask "who lost traffic, and to which fault".
    pub dropped_per_peer: BTreeMap<PeerId, DropBreakdown>,
    /// Channel (data-plane) messages delivered.
    pub channel_messages: u64,
    /// Control-plane messages delivered (DHT lookups, deployment, …).
    pub control_messages: u64,
    /// Messages *avoided* by true channel multicast: when a published stream
    /// has several subscribers behind the same destination peer (or on the
    /// producing peer itself), one physical message serves all of them
    /// instead of one unicast per subscriber.  The E7 "traffic saved by
    /// stream reuse" counter — compare against `total_messages` or a
    /// reuse-off baseline.
    pub multicast_saved_messages: u64,
    /// Messages a *replica* peer sent on the original publisher's behalf:
    /// a subscriber of a hot channel re-publishes it (Section 5's
    /// `<InChannel>` declarations), later consumers attach to the replica,
    /// and the replica forwards the multicast hop the origin would otherwise
    /// have sent itself.  Every message counted here is origin-peer load
    /// moved onto a consumer — the replica-re-publication saving.
    pub replica_forwarded_messages: u64,
    /// Per-link counters, keyed by (from, to).
    pub per_link: BTreeMap<(PeerId, PeerId), LinkStats>,
}

impl NetworkStats {
    /// Records the delivery of one message.
    ///
    /// `bytes` is the serialized payload size captured at *send* time: when
    /// several deliveries share one `Arc`-ed payload (channel multicast),
    /// each delivery still charges the full serialized size — the simulated
    /// wire does not share reference counts.
    pub fn record_delivery(
        &mut self,
        from: impl Into<PeerId>,
        to: impl Into<PeerId>,
        bytes: usize,
        is_channel: bool,
    ) {
        self.total_messages += 1;
        self.total_bytes += bytes as u64;
        if is_channel {
            self.channel_messages += 1;
        } else {
            self.control_messages += 1;
        }
        let link = self.per_link.entry((from.into(), to.into())).or_default();
        link.messages += 1;
        link.bytes += bytes as u64;
    }

    /// Records a dropped message, attributing it to the link it would have
    /// crossed and to the fault class that killed it.
    pub fn record_drop(
        &mut self,
        from: impl Into<PeerId>,
        to: impl Into<PeerId>,
        cause: DropCause,
    ) {
        let (from, to) = (from.into(), to.into());
        self.dropped_messages += 1;
        self.dropped_by_cause.record(cause);
        self.per_link.entry((from, to)).or_default().dropped += 1;
        self.dropped_per_peer.entry(from).or_default().record(cause);
        if from != to {
            self.dropped_per_peer.entry(to).or_default().record(cause);
        }
    }

    /// Records messages avoided by sharing one physical stream between
    /// several subscribers (per-destination-peer multicast dedup and local
    /// attachment).
    pub fn record_multicast_saving(&mut self, saved: u64) {
        self.multicast_saved_messages += saved;
    }

    /// Records messages a replica peer forwarded on the origin's behalf (see
    /// [`NetworkStats::replica_forwarded_messages`]).
    pub fn record_replica_forward(&mut self, forwarded: u64) {
        self.replica_forwarded_messages += forwarded;
    }

    /// Counters for one directed link.
    pub fn link(&self, from: &str, to: &str) -> LinkStats {
        self.per_link
            .get(&(PeerId::from(from), PeerId::from(to)))
            .copied()
            .unwrap_or_default()
    }

    /// Total bytes that crossed links *into* the given peer.
    pub fn bytes_into(&self, peer: &str) -> u64 {
        self.per_link
            .iter()
            .filter(|((_, to), _)| *to == peer)
            .map(|(_, s)| s.bytes)
            .sum()
    }

    /// Total bytes that crossed links *out of* the given peer.
    pub fn bytes_out_of(&self, peer: &str) -> u64 {
        self.per_link
            .iter()
            .filter(|((from, _), _)| *from == peer)
            .map(|(_, s)| s.bytes)
            .sum()
    }

    /// Per-peer traffic rollup over every link, keyed by peer — the summary
    /// the monitoring plane surfaces per [`crate::PeerId`] (e.g. to find the
    /// busiest hosts of a deployment).
    pub fn per_peer(&self) -> BTreeMap<PeerId, PeerTraffic> {
        let mut out: BTreeMap<PeerId, PeerTraffic> = BTreeMap::new();
        for (&(from, to), link) in &self.per_link {
            let sender = out.entry(from).or_default();
            sender.messages_out += link.messages;
            sender.bytes_out += link.bytes;
            sender.dropped_out += link.dropped;
            let receiver = out.entry(to).or_default();
            receiver.messages_in += link.messages;
            receiver.bytes_in += link.bytes;
            receiver.dropped_in += link.dropped;
        }
        for (&peer, &drops) in &self.dropped_per_peer {
            out.entry(peer).or_default().attributed_drops = drops;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_accounting() {
        let mut s = NetworkStats::default();
        s.record_delivery("a", "b", 100, true);
        s.record_delivery("a", "b", 50, false);
        s.record_delivery("b", "c", 10, true);
        s.record_drop("a", "b", DropCause::Random);
        assert_eq!(s.total_messages, 3);
        assert_eq!(s.total_bytes, 160);
        assert_eq!(s.channel_messages, 2);
        assert_eq!(s.control_messages, 1);
        assert_eq!(s.dropped_messages, 1);
        assert_eq!(s.dropped_by_cause.total(), 1);
        assert_eq!(s.link("a", "b").messages, 2);
        assert_eq!(s.link("a", "b").bytes, 150);
        assert_eq!(s.link("a", "b").dropped, 1);
        assert_eq!(s.link("c", "a"), LinkStats::default());
        assert_eq!(s.bytes_into("b"), 150);
        assert_eq!(s.bytes_out_of("b"), 10);
        assert_eq!(s.bytes_into("a"), 0);
    }

    #[test]
    fn multicast_savings_accumulate() {
        let mut s = NetworkStats::default();
        s.record_multicast_saving(3);
        s.record_multicast_saving(1);
        assert_eq!(s.multicast_saved_messages, 4);
        // Savings are not deliveries: the delivered counters stay untouched.
        assert_eq!(s.total_messages, 0);
    }

    #[test]
    fn replica_forwards_accumulate_without_touching_deliveries() {
        let mut s = NetworkStats::default();
        s.record_replica_forward(2);
        s.record_replica_forward(5);
        assert_eq!(s.replica_forwarded_messages, 7);
        assert_eq!(s.total_messages, 0);
        assert_eq!(s.multicast_saved_messages, 0);
    }

    #[test]
    fn per_peer_rollup_sums_both_directions() {
        let mut s = NetworkStats::default();
        s.record_delivery("a", "b", 100, true);
        s.record_delivery("b", "a", 30, true);
        s.record_delivery("b", "c", 10, false);
        let rollup = s.per_peer();
        let peer = |p: &str| rollup[&PeerId::from(p)];
        assert_eq!(peer("a").bytes_out, 100);
        assert_eq!(peer("a").bytes_in, 30);
        assert_eq!(peer("b").messages_out, 2);
        assert_eq!(peer("b").messages_in, 1);
        assert_eq!(peer("c").messages_in, 1);
        assert_eq!(peer("c").messages_out, 0);
    }

    #[test]
    fn drop_attribution_reconciles_causes_links_and_peers() {
        let mut s = NetworkStats::default();
        s.record_drop("a", "b", DropCause::PeerDown);
        s.record_drop("a", "b", DropCause::Partition);
        s.record_drop("b", "c", DropCause::Random);
        s.record_drop("x", "a", DropCause::UnknownPeer);
        s.record_drop("a", "a", DropCause::PeerDown);
        // The accounting identity: totals, causes and per-link counters all
        // name the same five losses.
        assert_eq!(s.dropped_messages, 5);
        assert_eq!(s.dropped_by_cause.total(), 5);
        assert_eq!(
            s.dropped_by_cause,
            DropBreakdown {
                unknown_peer: 1,
                peer_down: 2,
                partition: 1,
                random: 1,
            }
        );
        let link_drops: u64 = s.per_link.values().map(|l| l.dropped).sum();
        assert_eq!(link_drops, 5);
        // Per-peer attribution charges both endpoints, once on a self-send.
        let rollup = s.per_peer();
        let a = rollup[&PeerId::from("a")];
        assert_eq!(a.dropped_out, 3);
        assert_eq!(a.dropped_in, 2);
        assert_eq!(a.attributed_drops.peer_down, 2);
        assert_eq!(a.attributed_drops.partition, 1);
        assert_eq!(a.attributed_drops.unknown_peer, 1);
        assert_eq!(a.attributed_drops.total(), 4);
        assert_eq!(rollup[&PeerId::from("b")].attributed_drops.random, 1);
        assert_eq!(rollup[&PeerId::from("c")].attributed_drops.random, 1);
        // Dropped-only links deliver nothing.
        assert_eq!(s.total_messages, 0);
        assert_eq!(s.link("a", "b").messages, 0);
        assert_eq!(s.link("a", "b").dropped, 2);
    }
}

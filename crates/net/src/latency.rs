//! Latency models for links between peers.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::PeerId;

/// How long a message takes from one peer to another.
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Every link has the same latency (milliseconds).
    Constant(u64),
    /// Latency drawn uniformly from `[min, max]` per message, from a seeded
    /// generator so that runs are reproducible.
    Uniform {
        /// Lower bound (ms).
        min: u64,
        /// Upper bound (ms), inclusive.
        max: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Explicit per-link latencies with a default for unlisted links.  The
    /// "network proximity" used by replica selection (Section 5) reads these.
    PerLink {
        /// (from, to) → latency (ms).  Lookups are directional.
        links: HashMap<(PeerId, PeerId), u64>,
        /// Latency for links not in the map.
        default: u64,
    },
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::Constant(10)
    }
}

/// A latency sampler: owns the RNG state for the `Uniform` model.
#[derive(Debug)]
pub struct LatencySampler {
    model: LatencyModel,
    rng: StdRng,
}

impl LatencySampler {
    /// Creates a sampler for the model.
    pub fn new(model: LatencyModel) -> Self {
        let seed = match &model {
            LatencyModel::Uniform { seed, .. } => *seed,
            _ => 0,
        };
        LatencySampler {
            model,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The latency model in use.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Samples the latency for one message on the link `from → to`.
    pub fn sample(&mut self, from: &str, to: &str) -> u64 {
        match &self.model {
            LatencyModel::Constant(ms) => *ms,
            LatencyModel::Uniform { min, max, .. } => {
                if max <= min {
                    *min
                } else {
                    self.rng.gen_range(*min..=*max)
                }
            }
            LatencyModel::PerLink { links, default } => links
                .get(&(PeerId::from(from), PeerId::from(to)))
                .copied()
                .unwrap_or(*default),
        }
    }

    /// The *expected* latency of a link, used by the optimizer / replica
    /// selection as a proximity measure without consuming randomness.
    pub fn expected(&self, from: &str, to: &str) -> u64 {
        match &self.model {
            LatencyModel::Constant(ms) => *ms,
            LatencyModel::Uniform { min, max, .. } => (min + max) / 2,
            LatencyModel::PerLink { links, default } => links
                .get(&(PeerId::from(from), PeerId::from(to)))
                .copied()
                .unwrap_or(*default),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model() {
        let mut s = LatencySampler::new(LatencyModel::Constant(25));
        assert_eq!(s.sample("a", "b"), 25);
        assert_eq!(s.expected("a", "b"), 25);
    }

    #[test]
    fn uniform_model_is_seeded_and_bounded() {
        let mut s1 = LatencySampler::new(LatencyModel::Uniform {
            min: 5,
            max: 50,
            seed: 42,
        });
        let mut s2 = LatencySampler::new(LatencyModel::Uniform {
            min: 5,
            max: 50,
            seed: 42,
        });
        let a: Vec<u64> = (0..20).map(|_| s1.sample("a", "b")).collect();
        let b: Vec<u64> = (0..20).map(|_| s2.sample("a", "b")).collect();
        assert_eq!(a, b, "same seed must give the same sequence");
        assert!(a.iter().all(|&l| (5..=50).contains(&l)));
        assert_eq!(s1.expected("a", "b"), 27);
    }

    #[test]
    fn per_link_model() {
        let mut links = HashMap::new();
        links.insert(("a".into(), "b".into()), 5);
        links.insert(("a".into(), "far".into()), 200);
        let mut s = LatencySampler::new(LatencyModel::PerLink { links, default: 50 });
        assert_eq!(s.sample("a", "b"), 5);
        assert_eq!(s.sample("a", "far"), 200);
        assert_eq!(s.sample("b", "a"), 50, "directional: unlisted reverse link");
    }

    #[test]
    fn degenerate_uniform_range() {
        let mut s = LatencySampler::new(LatencyModel::Uniform {
            min: 7,
            max: 7,
            seed: 1,
        });
        assert_eq!(s.sample("x", "y"), 7);
    }
}
